"""Content-addressed run artifacts for sweep, fuzz, and live campaigns.

A long campaign is only as credible as its paper trail.  This module
gives every campaign a *run directory* — ``runs/<run_id>/`` — whose
name is a content hash of the campaign's identity (for the
deterministic engines: the request cache keys, which already cover the
cache schema version and any active bug injection; for live runs: the
full config).  Two invocations of the same campaign therefore land in
the same directory, which is what makes interruption recovery trivial:
the second leg finds the first leg's completed cells on disk and skips
them.

Layout of one run directory::

    runs/<run_id>/
        manifest.json     identity, provenance, planned cells, status
        results/          one ExecutionResult JSON per completed cell,
                          named by request cache key (a ResultCache)
        metrics.jsonl     one line per completed cell, appended as the
                          campaign progresses (audit log across legs)
        progress.jsonl    ProgressReporter heartbeats
        summary.json      coverage, cache stats, span aggregates, SLO
                          verdicts — written when a leg finishes

The manifest records *plan* and *provenance*; ``results/`` records
*facts*; ``summary.json`` records *verdicts*.  Resume counters in the
summary (``completed_before`` / ``re_executed``) are how a restarted
campaign proves it re-executed nothing.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.inject import active_injection

#: Bump when the manifest/summary layout changes incompatibly.
RUN_SCHEMA = 1

#: Manifest/summary file names within a run directory.
MANIFEST_NAME = "manifest.json"
SUMMARY_NAME = "summary.json"
METRICS_NAME = "metrics.jsonl"
PROGRESS_NAME = "progress.jsonl"
RESULTS_DIR = "results"

#: The run kinds this layer knows how to summarize.
RUN_KINDS = ("sweep", "fuzz", "live")


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, default=repr)


def compute_run_id(kind: str, identity: Any) -> str:
    """A stable content hash naming one campaign.

    ``identity`` must already cover everything that determines the
    campaign's results — for request-based campaigns the request cache
    keys do (they hash engine semantics version and bug injections),
    for live runs the serialized config does.
    """
    digest = hashlib.sha256(
        _canonical({"schema": RUN_SCHEMA, "kind": kind, "identity": identity})
        .encode("utf-8")
    ).hexdigest()
    return digest[:16]


def git_provenance(repo_dir: str | Path | None = None) -> dict[str, Any]:
    """Best-effort ``{commit, dirty}`` of the working tree.

    Never raises: outside a git checkout (or without a git binary) the
    commit is recorded as ``None`` — provenance is an audit aid, not a
    precondition for running campaigns.
    """
    cwd = str(repo_dir) if repo_dir is not None else None
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, cwd=cwd,
        ).stdout.strip() or None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5, cwd=cwd,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        return {"commit": None, "dirty": None}
    return {"commit": commit, "dirty": dirty}


@dataclass(frozen=True)
class SLOConfig:
    """Pass/fail thresholds a campaign's summary is judged against.

    ``None`` disables a threshold; the evaluation only emits verdicts
    for thresholds that apply to the run at hand (latency/detection
    SLOs are wall-clock figures, so they bind live runs only).
    """

    #: Fraction of planned cells that must have completed results.
    min_coverage: float = 1.0
    #: Cells the trace oracle flagged (when checking ran) must not exceed.
    max_oracle_failures: int = 0
    #: Corrupt cache entries evicted during the campaign must not exceed.
    max_corrupt_evictions: int = 0
    #: p99 of live per-session decision latency (wall milliseconds).
    decision_latency_p99_ms: float | None = None
    #: p99 of live crash-detection delay (wall milliseconds).
    detection_delay_p99_ms: float | None = None
    #: Live false suspicions allowed (P must stay accurate; ◊P may not).
    max_false_suspicions: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "min_coverage": self.min_coverage,
            "max_oracle_failures": self.max_oracle_failures,
            "max_corrupt_evictions": self.max_corrupt_evictions,
            "decision_latency_p99_ms": self.decision_latency_p99_ms,
            "detection_delay_p99_ms": self.detection_delay_p99_ms,
            "max_false_suspicions": self.max_false_suspicions,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLOConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


#: Default thresholds for live runs: generous enough for CI machines,
#: tight enough that a hung detector or a stalled session fails loudly.
DEFAULT_LIVE_SLO = SLOConfig(
    decision_latency_p99_ms=5000.0,
    detection_delay_p99_ms=2000.0,
    max_false_suspicions=0,
)


def evaluate_slos(slo: SLOConfig, summary: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Judge a summary against the thresholds; one verdict per applicable SLO.

    Each verdict is ``{"slo", "threshold", "actual", "ok"}``.  An SLO
    whose input is absent from the summary (e.g. detection delay on a
    failure-free run) is reported with ``actual: None`` and passes —
    absence of evidence is not a violation, and the coverage SLO
    already guards against empty campaigns.
    """
    verdicts: list[dict[str, Any]] = []

    def judge(name: str, threshold: Any, actual: Any, ok: bool) -> None:
        verdicts.append(
            {"slo": name, "threshold": threshold, "actual": actual, "ok": ok}
        )

    coverage = summary.get("coverage", {})
    fraction = coverage.get("fraction")
    if fraction is not None:
        judge(
            "coverage",
            slo.min_coverage,
            fraction,
            fraction >= slo.min_coverage,
        )

    oracle = summary.get("oracle")
    if oracle is not None:
        failures = oracle.get("failed", 0)
        judge(
            "oracle_failures",
            slo.max_oracle_failures,
            failures,
            failures <= slo.max_oracle_failures,
        )

    cache = summary.get("cache")
    if cache is not None:
        evictions = cache.get("corrupt_evictions", 0)
        judge(
            "corrupt_evictions",
            slo.max_corrupt_evictions,
            evictions,
            evictions <= slo.max_corrupt_evictions,
        )

    live = summary.get("live")
    if live is not None:
        if slo.decision_latency_p99_ms is not None:
            p99 = (live.get("decision_latency_ms") or {}).get("p99")
            judge(
                "decision_latency_p99_ms",
                slo.decision_latency_p99_ms,
                p99,
                p99 is None or p99 <= slo.decision_latency_p99_ms,
            )
        if slo.detection_delay_p99_ms is not None:
            p99 = (live.get("detection_delay_ms") or {}).get("p99")
            judge(
                "detection_delay_p99_ms",
                slo.detection_delay_p99_ms,
                p99,
                p99 is None or p99 <= slo.detection_delay_p99_ms,
            )
        if slo.max_false_suspicions is not None:
            false = live.get("false_suspicions", 0)
            judge(
                "false_suspicions",
                slo.max_false_suspicions,
                false,
                false <= slo.max_false_suspicions,
            )

    return verdicts


@dataclass
class RunDir:
    """One campaign's artifact directory; see the module docstring."""

    path: Path
    manifest: dict[str, Any] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: str | Path,
        *,
        kind: str,
        name: str,
        identity: Any,
        cells: Sequence[tuple[str, str]] | None = None,
        config: Mapping[str, Any] | None = None,
        slo: SLOConfig | None = None,
    ) -> "RunDir":
        """Create — or, when the campaign already ran, re-attach to — a run.

        ``root`` is the runs root (e.g. ``runs/``); the actual
        directory is ``root/<run_id>`` with the id derived from
        ``identity``.  An existing manifest for the same id means a
        prior leg of the *same* campaign: its provenance is preserved,
        ``legs`` is bumped, and completed results stay in place so the
        new leg resumes instead of re-executing.
        """
        if kind not in RUN_KINDS:
            raise ValueError(f"unknown run kind {kind!r}; choose from {RUN_KINDS}")
        run_id = compute_run_id(kind, identity)
        path = Path(root) / run_id
        path.mkdir(parents=True, exist_ok=True)
        (path / RESULTS_DIR).mkdir(exist_ok=True)

        manifest_path = path / MANIFEST_NAME
        prior: dict[str, Any] = {}
        if manifest_path.exists():
            try:
                prior = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                prior = {}

        manifest = {
            "schema": RUN_SCHEMA,
            "kind": kind,
            "run_id": run_id,
            "name": name,
            "status": "running",
            "legs": int(prior.get("legs", 0)) + 1,
            "git": prior.get("git") or git_provenance(),
            "injection": active_injection(),
            "config": dict(config or {}),
            "slo": (slo or SLOConfig()).to_dict(),
            "cells": [
                {"name": cell_name, "key": cell_key}
                for cell_name, cell_key in (cells or [])
            ],
            "planned": len(cells) if cells is not None else None,
        }
        run = cls(path=path, manifest=manifest)
        run._write_manifest()
        return run

    @classmethod
    def load(cls, path: str | Path) -> "RunDir":
        """Attach to an existing run directory (read side)."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise FileNotFoundError(
                f"{path} is not a run directory (no readable {MANIFEST_NAME}): {exc}"
            ) from exc
        except ValueError as exc:
            raise ValueError(f"{manifest_path}: invalid JSON: {exc}") from exc
        return cls(path=path, manifest=manifest)

    # -- identity ------------------------------------------------------------

    @property
    def run_id(self) -> str:
        return self.manifest.get("run_id", self.path.name)

    @property
    def kind(self) -> str:
        return self.manifest.get("kind", "sweep")

    @property
    def slo(self) -> SLOConfig:
        return SLOConfig.from_dict(self.manifest.get("slo", {}))

    @property
    def results_dir(self) -> Path:
        return self.path / RESULTS_DIR

    # -- the facts side ------------------------------------------------------

    def completed_keys(self) -> set[str]:
        """Request keys whose results are already on disk (prior legs)."""
        return {
            entry.stem
            for entry in self.results_dir.glob("*.json")
            if not entry.name.startswith(".tmp-")
        }

    def record_cell(
        self,
        *,
        name: str,
        key: str,
        cached: bool,
        engine: str | None = None,
        algorithm: str | None = None,
        latency: int | None = None,
        num_rounds: int | None = None,
        events: int | None = None,
        duration_s: float | None = None,
        ok: bool | None = None,
    ) -> None:
        """Append one completed-cell line to ``metrics.jsonl``.

        Called once per cell per leg (cache hits included, flagged
        ``cached``), so the file is a complete audit log of what each
        leg observed, in completion order.
        """
        record = {
            "t": "cell",
            "leg": self.manifest.get("legs", 1),
            "cell": name,
            "key": key,
            "cached": cached,
            "engine": engine,
            "algorithm": algorithm,
            "latency": latency,
            "num_rounds": num_rounds,
            "events": events,
            "duration_s": duration_s,
            "ok": ok,
        }
        self._append_jsonl(METRICS_NAME, record)

    def record_line(self, record: Mapping[str, Any]) -> None:
        """Append an arbitrary record to ``metrics.jsonl`` (live sessions,
        span rollups — anything worth auditing that is not a cell)."""
        self._append_jsonl(METRICS_NAME, dict(record))

    def metrics_records(self) -> list[dict[str, Any]]:
        return self._read_jsonl(METRICS_NAME)

    def progress_records(self) -> list[dict[str, Any]]:
        return self._read_jsonl(PROGRESS_NAME)

    @property
    def progress_path(self) -> Path:
        return self.path / PROGRESS_NAME

    # -- the verdicts side ---------------------------------------------------

    def finalize(
        self, summary: Mapping[str, Any], *, status: str = "complete"
    ) -> None:
        """Write ``summary.json`` and flip the manifest to ``status``."""
        payload = dict(summary)
        payload.setdefault("schema", RUN_SCHEMA)
        payload.setdefault("run_id", self.run_id)
        payload.setdefault("kind", self.kind)
        (self.path / SUMMARY_NAME).write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n",
            encoding="utf-8",
        )
        self.manifest["status"] = status
        self._write_manifest()

    def mark_interrupted(self) -> None:
        """Record that this leg died mid-campaign (resume will finish it)."""
        self.manifest["status"] = "interrupted"
        self._write_manifest()

    def summary(self) -> dict[str, Any] | None:
        try:
            return json.loads(
                (self.path / SUMMARY_NAME).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None

    # -- plumbing ------------------------------------------------------------

    def _write_manifest(self) -> None:
        (self.path / MANIFEST_NAME).write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True, default=repr)
            + "\n",
            encoding="utf-8",
        )

    def _append_jsonl(self, name: str, record: Mapping[str, Any]) -> None:
        with open(self.path / name, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=repr))
            handle.write("\n")

    def _read_jsonl(self, name: str) -> list[dict[str, Any]]:
        try:
            with open(self.path / name, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # a torn write from a killed leg is not news
        return records


def identity_for_requests(requests: Iterable[Any]) -> list[str]:
    """The campaign identity of a request-based run: sorted cache keys.

    Cache keys already hash the engine semantics version and any active
    bug injection, so campaigns under a mutated engine get their own
    run directory — mirroring how :class:`~repro.runtime.cache.ResultCache`
    keeps mutated results apart.
    """
    return sorted(request.cache_key() for request in requests)
