"""Tests for the time-freeness machinery (paper Section 2.7)."""

from __future__ import annotations

import random

import pytest

from repro.analysis import (
    check_time_free_execution,
    random_linear_extension,
    reexecute_with_projections,
)
from repro.analysis.indistinguishability import observations
from repro.errors import ExecutionError
from repro.failures import FailurePattern, TimeoutPerfectDetector
from repro.models import SynchronousModel
from repro.sdd import sdd_decision, solve_sdd_ss
from repro.sdd.ss_algorithm import SDDReceiverSS, SDDSender


def sdd_run(seed=0, value=1, crashes=None, phi=2, delta=2):
    rng = random.Random(seed)
    pattern = FailurePattern.with_crashes(2, crashes or {})
    run = solve_sdd_ss(value, pattern, phi=phi, delta=delta, rng=rng)
    automata = [SDDSender(value), SDDReceiverSS(phi, delta)]
    return run, automata


class TestLinearExtensions:
    def test_preserves_per_process_step_counts(self):
        run, _ = sdd_run()
        order = random_linear_extension(run, random.Random(1))
        assert len(order) == len(run.schedule)
        for pid in range(run.n):
            original = sum(1 for s in run.schedule if s.pid == pid)
            replayed = sum(1 for node in order if node.pid == pid)
            assert original == replayed

    def test_respects_per_process_order(self):
        run, _ = sdd_run()
        order = random_linear_extension(run, random.Random(2))
        last_local = {pid: -1 for pid in range(run.n)}
        for node in order:
            assert node.local_index == last_local[node.pid] + 1
            last_local[node.pid] = node.local_index

    def test_respects_send_receive_causality(self):
        run, _ = sdd_run()
        order = random_linear_extension(run, random.Random(3))
        position = {
            (node.pid, node.local_index): i for i, node in enumerate(order)
        }
        for node in order:
            for dep in node.depends_on:
                assert position[dep] < position[(node.pid, node.local_index)]

    def test_extensions_vary(self):
        """With concurrency present, different seeds give different
        interleavings (else the test is vacuous)."""
        run, _ = sdd_run()
        orders = {
            tuple((n.pid, n.local_index) for n in
                  random_linear_extension(run, random.Random(seed)))
            for seed in range(8)
        }
        assert len(orders) > 1


class TestReexecution:
    def test_projections_preserved(self):
        run, automata = sdd_run(seed=5)
        replay = reexecute_with_projections(run, automata, random.Random(7))
        for pid in range(run.n):
            assert observations(run, pid) == observations(replay, pid)

    def test_sdd_outcome_invariant(self):
        run, automata = sdd_run(seed=5)
        problems = check_time_free_execution(
            run,
            automata,
            outcome=lambda r, pid: getattr(
                r.final_states[pid], "decisions", None
            ),
            rng=random.Random(11),
            attempts=4,
        )
        assert problems == []

    @pytest.mark.parametrize("seed", range(6))
    def test_sdd_with_crashes_invariant(self, seed):
        crashes = {0: (seed % 4) + 1} if seed % 2 else {}
        run, automata = sdd_run(seed=seed, crashes=crashes)
        problems = check_time_free_execution(
            run,
            automata,
            outcome=lambda r, pid: getattr(
                r.final_states[pid], "decisions", None
            ),
            rng=random.Random(seed),
        )
        assert problems == []

    def test_detector_outcomes_invariant(self):
        """The timeout detector's final suspicions are a function of the
        projections too (suspicion sets are re-fed positionally)."""
        n, phi, delta = 3, 1, 1
        pattern = FailurePattern.with_crashes(n, {1: 10})
        model = SynchronousModel(phi=phi, delta=delta)
        automaton = TimeoutPerfectDetector(n, phi, delta)
        run = model.executor(
            automaton, n, pattern, rng=random.Random(3)
        ).execute(120)
        problems = check_time_free_execution(
            run,
            automaton,
            outcome=lambda r, pid: r.final_states[pid].suspected,
            rng=random.Random(5),
            attempts=2,
        )
        assert problems == []

    def test_a_time_sensitive_automaton_is_not_invariant(self):
        """Sanity check in the other direction: an automaton whose
        output depends on the *global* interleaving (via message uids,
        which are global send counters) is flagged — provided the run
        has genuine concurrency (two causally unordered sends)."""
        from repro.simulation import ScriptedScheduler, StepExecutor
        from repro.simulation.automaton import StepAutomaton, StepOutcome

        class UidSniffer(StepAutomaton):
            """Records raw message uids — global information a real
            process could not observe."""

            def initial_state(self, pid, n):
                return ()

            def on_step(self, ctx):
                pairs = tuple(
                    sorted((m.sender, m.uid) for m in ctx.received)
                )
                state = ctx.state + pairs
                if ctx.pid in (0, 1) and ctx.local_step == 1:
                    return StepOutcome(
                        state=state, send_to=2, payload=f"from{ctx.pid}"
                    )
                return StepOutcome(state=state)

        pattern = FailurePattern.crash_free(3)
        # p0's and p1's sends are causally unordered; p2 receives both.
        executor = StepExecutor(
            UidSniffer(),
            3,
            pattern,
            ScriptedScheduler([(0, []), (1, []), (2, "all")]),
        )
        run = executor.execute(3)
        assert run.final_states[2] == ((0, 0), (1, 1))
        problems = []
        for seed in range(10):
            problems = check_time_free_execution(
                run,
                UidSniffer(),
                outcome=lambda r, pid: r.final_states[pid],
                rng=random.Random(seed),
                attempts=4,
            )
            if problems:
                break
        assert problems, (
            "uid-dependent state should diverge once the unordered "
            "sends swap their uid assignment"
        )
