"""Messages exchanged by processes in the step-level kernel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Message:
    """A point-to-point message.

    Messages are immutable value objects.  The executor assigns each a
    unique ``uid`` and records the global step index at which it was
    sent; both are used by synchrony validators (the Δ bound of the SS
    model is a condition on send/receive step indices).

    Attributes:
        uid: Unique, monotonically increasing identifier assigned by the
            executor at send time.
        sender: Index of the sending process.
        recipient: Index of the destination process.
        payload: Arbitrary application data.  Payloads should be treated
            as immutable; algorithms must not mutate a payload after
            sending it.
        sent_step: Global index of the step during which the message was
            sent.
    """

    uid: int
    sender: int
    recipient: int
    payload: Any
    sent_step: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(uid={self.uid}, {self.sender}->{self.recipient}, "
            f"payload={self.payload!r}, sent_step={self.sent_step})"
        )
