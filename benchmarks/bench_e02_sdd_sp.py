"""E2 — Theorem 3.1: SDD unsolvable in SP.

Times the indistinguishability-quadruple refutation of every candidate
SP receiver.
"""

from repro.core.experiments import experiment_e2
from repro.sdd import SP_CANDIDATE_FACTORIES, refute_sdd_candidate


def bench_e2_theorem_31_refutations(once):
    result = once(experiment_e2, True)
    assert result.ok, result.describe()


def bench_e2_single_refutation(benchmark):
    """Microbenchmark: one run-quadruple refutation."""
    refutation = benchmark(
        refute_sdd_candidate, SP_CANDIDATE_FACTORIES["suspicion"], "suspicion"
    )
    assert refutation.refuted
