"""``repro sweep``: run a scenario space through the unified runtime.

Spaces come from the runtime catalogue (``repro sweep --list``); the
runner executes them serially or across a process pool, optionally
backed by the on-disk result cache, and can pipe every produced trace
through the trace oracle.  With ``--run-dir ROOT`` the sweep writes a
content-addressed run directory under ROOT (manifest, incremental
``metrics.jsonl``, ``progress.jsonl`` heartbeats, final
``summary.json`` with SLO verdicts) and uses its ``results/`` store as
the cache — killing the sweep and re-invoking it resumes, skipping
every completed cell; ``repro report`` renders the artifacts.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError
from repro.obs.artifacts import RunDir, identity_for_requests
from repro.obs.progress import ProgressReporter
from repro.obs.report import summarize_sweep
from repro.runtime import ResultCache, SPACE_FACTORIES, SweepRunner, space_by_name
from repro.runtime.space import vectorized_space
from repro.vector import backend_name


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list:
        for name in sorted(SPACE_FACTORIES):
            print(name)
        return 0
    if args.space is None:
        print(
            f"error: provide a space name (one of {sorted(SPACE_FACTORIES)})"
            " or --list",
            file=sys.stderr,
        )
        return 2
    try:
        space = space_by_name(args.space, count=args.count, seed=args.seed)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.engine == "vector":
        space = vectorized_space(space)
        print(f"vector engine: {backend_name()} backend")

    run_dir = None
    reporter = None
    completed_before: set[str] = set()
    on_cell = None
    cache = args.cache_dir
    if args.run_dir is not None:
        requests = list(space.requests)
        run_dir = RunDir.open(
            args.run_dir,
            kind="sweep",
            name=space.name,
            identity=identity_for_requests(requests),
            cells=[(r.name, r.cache_key()) for r in requests],
            config={
                "space": args.space,
                "count": args.count,
                "seed": args.seed,
                "check": bool(args.check),
                "engine": args.engine,
            },
        )
        completed_before = run_dir.completed_keys()
        cache = ResultCache(run_dir.results_dir)
        reporter = ProgressReporter(
            total=len(requests),
            path=run_dir.progress_path,
            stream=sys.stderr,
            label=space.name,
        ).start()

        def on_cell(request, result) -> None:
            profile = result.extra.get("profile") or {}
            run_dir.record_cell(
                name=request.name,
                key=result.request_key,
                cached=result.cached,
                engine=request.engine,
                algorithm=request.algorithm,
                latency=result.latency,
                num_rounds=result.num_rounds,
                events=len(result.events),
                duration_s=profile.get("duration_s"),
            )
            reporter.advance(cached=result.cached)

    runner = SweepRunner(
        jobs=args.jobs, cache=cache, check=args.check, on_cell=on_cell
    )
    try:
        result = runner.run(space)
    except BaseException:
        if run_dir is not None:
            run_dir.mark_interrupted()
        if reporter is not None:
            reporter.stop(status="interrupted")
        raise
    if run_dir is not None:
        summary = summarize_sweep(
            run_dir, result, completed_before=completed_before
        )
        run_dir.finalize(summary)
        reporter.stop()
    print(result.describe())
    if run_dir is not None:
        print(
            f"run artifacts: {run_dir.path} (inspect with `repro report`)"
        )
    if args.jsonl:
        count = result.write_merged_jsonl(args.jsonl)
        print(f"wrote {count} merged events to {args.jsonl}")
    if args.space == "e10-lambda":
        print("latency (best, worst) per algorithm over failure-free runs:")
        for name, (best, worst) in sorted(
            result.latency_by_algorithm().items()
        ):
            worst_text = "undecided" if worst is None else str(worst)
            print(f"  {name}: best={best}, worst(Λ)={worst_text}")
    if args.check and not result.checks_ok:
        return 1
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_sweep = sub.add_parser(
        "sweep",
        help="execute a scenario space (parallel, cached, checked)",
    )
    p_sweep.add_argument(
        "space",
        nargs="?",
        help=f"one of {sorted(SPACE_FACTORIES)}",
    )
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1, serial)",
    )
    p_sweep.add_argument(
        "--engine",
        choices=("rounds", "vector"),
        default="rounds",
        help=(
            "retarget the space's rounds cells: 'vector' runs them on "
            "the columnar batch kernel (numpy-backed with the 'fast' "
            "extra, pure-Python otherwise; byte-identical traces)"
        ),
    )
    p_sweep.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk result cache; repeated sweeps execute 0 scenarios",
    )
    p_sweep.add_argument(
        "--run-dir",
        metavar="ROOT",
        help=(
            "write a content-addressed run directory under ROOT "
            "(manifest, metrics.jsonl, progress, summary.json); its "
            "results/ store doubles as the cache, so interrupted "
            "sweeps resume (overrides --cache-dir)"
        ),
    )
    p_sweep.add_argument(
        "--check",
        action="store_true",
        help="run the trace oracle over every cell's trace",
    )
    p_sweep.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write the merged (deterministic) sweep trace to PATH",
    )
    p_sweep.add_argument(
        "--count",
        type=int,
        help="cells per random stream (stream-based spaces only)",
    )
    p_sweep.add_argument(
        "--seed",
        type=int,
        help="stream seed (stream-based spaces only)",
    )
    p_sweep.add_argument(
        "--list",
        action="store_true",
        help="list the registered scenario spaces and exit",
    )
    p_sweep.set_defaults(func=_cmd_sweep)
