"""Group plans: one value-free symbolic execution shared by a batch.

A :class:`GroupPlan` is the complete control-flow trace of every cell
sharing ``(algorithm, n, t, model, scenario, max_rounds, params)`` —
the batch *group*.  It is built by replaying the round executor's exact
per-round contract (round_start, send loop in pid/recipient order under
the scenario's crash filter, delivery loop in send order under the
pending-message filter, transition loop with crash events, quiescence,
trailing halts) against a plan kernel from
:mod:`repro.vector.kernels`, producing:

* ``hooks`` — the observer-call sequence, with decide events as
  indexed slots awaiting per-cell values;
* ``program`` — per executed round, the batched ``W``-union ops and
  decision-source ops the value kernel runs over the whole batch;
* the template ``decisions`` rounds, ``latency`` and ``num_rounds``,
  which are value-independent and therefore shared by the group.

The adversary predicates (``sends_reach``, ``withholds``) are the
*same methods* of :class:`~repro.rounds.scenario.FailureScenario` the
object executor uses — one source of truth for the crash/pending
semantics, which is what keeps the two engines byte-identical.

Plans are memoized per group key (scenarios are frozen and hashable),
so sweeping a thousand value assignments over one adversary builds the
plan once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rounds.executor import RoundModel
from repro.rounds.scenario import FailureScenario, validate_scenario
from repro.vector.kernels import PlanState, plan_kernel_for

#: Memoized plans; bounded so long fuzz campaigns cannot grow it
#: without limit (plans are small, the cap is generous).
_PLAN_CACHE: dict[tuple, "GroupPlan"] = {}
_PLAN_CACHE_MAX = 512


@dataclass(frozen=True)
class GroupPlan:
    """The shared control-flow trace of one batch group."""

    algorithm: str
    n: int
    t: int
    kind: str  # "set" (W-bitmask kernel) or "pick" (initial-value kernel)
    #: Observer-call descriptors in emission order.  Decide hooks carry
    #: their slot index instead of a value.
    hooks: tuple[tuple, ...]
    #: ``(pid, round)`` per decide slot, in emission order.
    decide_slots: tuple[tuple[int, int], ...]
    #: Per executed round: ``(unions, decides)`` where ``unions`` is
    #: ``((j, senders), ...)`` and ``decides`` is
    #: ``((slot, pid, op, src), ...)``.
    program: tuple[tuple[tuple, tuple], ...]
    num_rounds: int
    #: ``pid -> round`` decision template (values vary per cell).
    decision_rounds: tuple[tuple[int, int], ...]
    #: The group latency — value-independent, shared by every cell.
    latency: int | None


def group_key(
    algorithm: str,
    n: int,
    t: int,
    model: str,
    scenario: FailureScenario,
    max_rounds: int,
    run_all_rounds: bool,
    validate: bool = True,
) -> tuple:
    # ``validate`` is part of the key: a plan built without validation
    # for an invalid scenario must not be recalled by a validating
    # caller (who expects ``None`` → object-engine rejection).
    return (algorithm, n, t, model, scenario, max_rounds, run_all_rounds, validate)


def build_plan(
    algorithm: str,
    n: int,
    t: int,
    model: str,
    scenario: FailureScenario,
    max_rounds: int,
    *,
    run_all_rounds: bool = False,
    validate: bool = True,
) -> GroupPlan | None:
    """Build (or recall) the plan for one group.

    Returns ``None`` whenever the group cannot be vectorized — unknown
    or unsupported algorithm, mismatched ``n``, or a scenario the
    validator rejects.  Callers fall back to the object engine, which
    reproduces the exact error (and ``scenario_rejected`` observer
    call) the caller would have seen anyway.
    """
    key = group_key(
        algorithm, n, t, model, scenario, max_rounds, run_all_rounds, validate
    )
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    if n != scenario.n:
        return None
    kernel = plan_kernel_for(algorithm, n, t)
    if kernel is None:
        return None
    if validate:
        problems = validate_scenario(
            scenario,
            t=t,
            allow_pending=(RoundModel(model) is RoundModel.RWS),
            horizon=max_rounds,
        )
        if problems:
            return None

    states = [PlanState() for _ in range(n)]
    hooks: list[tuple] = []
    slots: list[tuple[int, int]] = []
    program: list[tuple[tuple, tuple]] = []
    decisions: dict[int, int] = {}
    rounds_executed = 0

    for round_index in range(1, max_rounds + 1):
        hooks.append(
            (
                "round_start",
                round_index,
                tuple(
                    pid
                    for pid in range(n)
                    if scenario.alive_at_start(pid, round_index)
                ),
            )
        )

        # Send phase: pid order, broadcast recipient order, crash filter.
        sender_decided = [state.decided for state in states]
        sent: list[tuple[int, int]] = []
        for pid in range(n):
            if not scenario.alive_at_start(pid, round_index):
                continue
            if not kernel.sends(pid, states[pid]):
                continue
            for recipient in range(n):
                if not scenario.sends_reach(pid, recipient, round_index):
                    continue
                sent.append((pid, recipient))
                hooks.append(("msg_sent", pid, recipient, round_index))

        # Delivery phase: send order, pending-message filter.
        recv: list[list[int]] = [[] for _ in range(n)]
        for sender, recipient in sent:
            if scenario.withholds(sender, recipient, round_index):
                hooks.append(
                    ("msg_withheld", sender, recipient, round_index)
                )
                continue
            recv[recipient].append(sender)
            hooks.append(("msg_delivered", sender, recipient, round_index))

        # Transition phase: crash events, kernel transitions, decides.
        unions_ops: list[tuple[int, tuple[int, ...]]] = []
        decide_ops: list[tuple[int, int, str, int]] = []
        for pid in range(n):
            crash = scenario.crash_of(pid)
            if crash is not None and crash.round == round_index:
                hooks.append(
                    ("crash", pid, round_index, crash.applies_transition)
                )
            if not scenario.alive_at_end(pid, round_index):
                continue
            if not scenario.alive_at_start(pid, round_index):
                continue
            unions, decide = kernel.transition(
                pid, states[pid], recv[pid], sender_decided
            )
            if unions:
                unions_ops.append((pid, unions))
            if decide is not None and pid not in decisions:
                slot = len(slots)
                slots.append((pid, round_index))
                decisions[pid] = round_index
                op, src = decide
                decide_ops.append((slot, pid, op, src))
                hooks.append(("decide", slot, pid, round_index))
        program.append((tuple(unions_ops), tuple(decide_ops)))
        rounds_executed = round_index

        if not run_all_rounds and all(
            kernel.halted(pid, states[pid])
            for pid in range(n)
            if scenario.alive_at_start(pid, round_index + 1)
        ):
            break

    for pid in range(n):
        if scenario.alive_at_start(pid, rounds_executed + 1) and kernel.halted(
            pid, states[pid]
        ):
            hooks.append(("halt", pid, rounds_executed))

    latency: int | None = 0
    for pid in scenario.correct:
        round_of = decisions.get(pid)
        if round_of is None:
            latency = None
            break
        latency = max(latency, round_of)

    plan = GroupPlan(
        algorithm=algorithm,
        n=n,
        t=t,
        kind=kernel.kind,
        hooks=tuple(hooks),
        decide_slots=tuple(slots),
        program=tuple(program),
        num_rounds=rounds_executed,
        decision_rounds=tuple(sorted(decisions.items())),
        latency=latency,
    )
    if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[key] = plan
    return plan
