"""The fabric's wire layer: stdlib HTTP around the coordinator.

One :class:`CoordinatorServer` exposes a :class:`~repro.serve.coordinator.
Coordinator` on four JSON endpoints:

* ``POST /claim``   — ``{"worker_id": ...}`` → a shard grant,
  ``{"wait": true}`` or ``{"done": true}``;
* ``POST /submit``  — a shard's results; malformed payloads come back
  ``400`` with the quarantine path, valid ones merge (dedup by cache
  key, stale leases accepted but counted);
* ``GET /status``   — the live fabric snapshot (shards, leases, workers);
* ``GET /summary``  — the finalized ``summary.json`` document, or an
  ``in_progress`` stub while cells are still missing.

Everything is ``http.server`` + ``json`` + ``urllib`` — no third-party
dependency, which is what lets the worker CLI run on any host with a
Python.  The server is a :class:`~http.server.ThreadingHTTPServer`;
the coordinator's own lock serializes state changes, so concurrent
claims and submits are safe.

:class:`ServeClient` is the matching client: typed errors split "the
coordinator answered with an error" (:class:`ServeAPIError`, carries
the HTTP status and the decoded body) from "there is no coordinator
there" (:class:`CoordinatorUnreachable`) — the worker loop retries the
latter and surfaces the former.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.serve.coordinator import Coordinator, SubmitError

#: Cap request bodies (a shard of big traces is a few MB; 256 MB means
#: a confused client, not a campaign).
MAX_BODY_BYTES = 256 * 1024 * 1024


class ServeAPIError(Exception):
    """The coordinator answered with an HTTP error status."""

    def __init__(self, status: int, body: Any) -> None:
        self.status = status
        self.body = body
        detail = body.get("error") if isinstance(body, dict) else body
        super().__init__(f"coordinator returned {status}: {detail}")


class CoordinatorUnreachable(Exception):
    """No coordinator is answering at the given address."""


def _make_handler(coordinator: Coordinator) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # the fabric's telemetry lives in /status, not stderr

        # -- plumbing ----------------------------------------------------

        def _send(self, status: int, payload: Any) -> None:
            body = json.dumps(payload, sort_keys=True, default=repr).encode(
                "utf-8"
            )
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            if length < 0 or length > MAX_BODY_BYTES:
                raise ValueError(f"unreasonable Content-Length {length}")
            return self.rfile.read(length)

        # -- routes ------------------------------------------------------

        def do_GET(self) -> None:
            if self.path == "/status":
                self._send(200, coordinator.status())
            elif self.path == "/summary":
                self._send(200, coordinator.summary_document())
            else:
                self._send(404, {"error": f"no such endpoint {self.path!r}"})

        def do_POST(self) -> None:
            if self.path == "/claim":
                try:
                    raw = self._read_body()
                    payload = json.loads(raw) if raw else {}
                    worker_id = (
                        payload.get("worker_id")
                        if isinstance(payload, dict)
                        else None
                    )
                except (ValueError, OSError):
                    worker_id = None
                self._send(200, coordinator.claim(worker_id or "anonymous"))
            elif self.path == "/submit":
                try:
                    raw = self._read_body()
                except (ValueError, OSError) as exc:
                    self._send(400, {"error": str(exc)})
                    return
                try:
                    payload: Any = json.loads(raw)
                except ValueError as exc:
                    path = coordinator.quarantine(raw, f"invalid JSON: {exc}")
                    self._send(
                        400,
                        {"error": f"invalid JSON: {exc}", "quarantined": path},
                    )
                    return
                try:
                    self._send(200, coordinator.submit(payload))
                except SubmitError as exc:
                    path = coordinator.quarantine(payload, str(exc))
                    self._send(
                        400, {"error": str(exc), "quarantined": path}
                    )
            else:
                self._send(404, {"error": f"no such endpoint {self.path!r}"})

    return Handler


class CoordinatorServer:
    """Serve one coordinator on ``host:port`` (port 0 → ephemeral)."""

    def __init__(
        self, coordinator: Coordinator, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.coordinator = coordinator
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(coordinator)
        )
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CoordinatorServer":
        """Serve requests on a daemon thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()


class ServeClient:
    """A worker's (or monitor's) typed view of the coordinator API."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _call(
        self, path: str, payload: Any | None = None
    ) -> Any:
        data = (
            json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            # HTTPError subclasses URLError subclasses OSError — catch
            # it first or every API error looks like a dead coordinator.
            try:
                body: Any = json.loads(exc.read())
            except ValueError:
                body = None
            raise ServeAPIError(exc.code, body) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise CoordinatorUnreachable(
                f"{self.base_url}{path}: {exc}"
            ) from exc

    def claim(self, worker_id: str) -> dict[str, Any]:
        return self._call("/claim", {"worker_id": worker_id})

    def submit(self, payload: dict[str, Any]) -> dict[str, Any]:
        return self._call("/submit", payload)

    def submit_raw(self, raw: bytes) -> Any:
        """POST pre-encoded bytes to ``/submit`` (fault-injection tests)."""
        request = urllib.request.Request(
            self.base_url + "/submit",
            data=raw,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                body: Any = json.loads(exc.read())
            except ValueError:
                body = None
            raise ServeAPIError(exc.code, body) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise CoordinatorUnreachable(
                f"{self.base_url}/submit: {exc}"
            ) from exc

    def status(self) -> dict[str, Any]:
        return self._call("/status")

    def summary(self) -> dict[str, Any]:
        return self._call("/summary")
