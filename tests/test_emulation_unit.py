"""Unit tests for the emulation automata's internal mechanics."""

from __future__ import annotations

import pytest

from repro.consensus import FloodSet
from repro.emulation.rs_on_ss import RoundOnSSAutomaton, round_deadlines
from repro.emulation.rws_on_sp import RoundOnSPAutomaton
from repro.errors import ConfigurationError
from repro.simulation.automaton import StepContext
from repro.simulation.message import Message


def make_rs_automaton(n=3, phi=1, delta=1, rounds=2):
    return RoundOnSSAutomaton(
        FloodSet(), n, 1, [0, 1, 2][:n], phi, delta, rounds
    )


def ctx(automaton, pid, state, received=(), suspects=None, local_step=1):
    messages = tuple(
        Message(uid=i, sender=sender, recipient=pid, payload=payload,
                sent_step=0)
        for i, (sender, payload) in enumerate(received)
    )
    return StepContext(
        pid=pid,
        n=automaton.n,
        state=state,
        received=messages,
        local_step=local_step,
        suspects=suspects,
    )


class TestRoundOnSSInternals:
    def test_initial_outbox_excludes_self(self):
        automaton = make_rs_automaton()
        state = automaton.initial_state(0, 3)
        recipients = [recipient for recipient, _ in state.outbox]
        assert recipients == [1, 2]
        assert state.self_payload == frozenset({0})

    def test_sends_one_message_per_step(self):
        automaton = make_rs_automaton()
        state = automaton.initial_state(0, 3)
        outcome = automaton.on_step(ctx(automaton, 0, state))
        assert outcome.send_to == 1
        round_tag, payload = outcome.payload
        assert round_tag == 1
        assert payload == frozenset({0})
        assert len(outcome.state.outbox) == 1

    def test_received_messages_filed_by_round(self):
        automaton = make_rs_automaton()
        state = automaton.initial_state(0, 3)
        outcome = automaton.on_step(
            ctx(automaton, 0, state,
                received=[(1, (2, frozenset({9})))])
        )
        assert outcome.state.inbox[2][1] == frozenset({9})

    def test_transition_fires_exactly_at_deadline(self):
        automaton = make_rs_automaton()
        deadline = automaton.deadlines[0]
        state = automaton.initial_state(0, 3)
        for step in range(1, deadline + 1):
            outcome = automaton.on_step(
                ctx(automaton, 0, state, local_step=step)
            )
            state = outcome.state
        assert state.round == 2  # advanced exactly at the deadline step
        assert state.delivered_log[0][0] == 1

    def test_self_payload_counts_as_delivered(self):
        automaton = make_rs_automaton()
        deadline = automaton.deadlines[0]
        state = automaton.initial_state(0, 3)
        for step in range(1, deadline + 1):
            state = automaton.on_step(
                ctx(automaton, 0, state, local_step=step)
            ).state
        _, senders = state.delivered_log[0]
        assert 0 in senders  # own broadcast received by itself

    def test_finished_after_last_round(self):
        automaton = make_rs_automaton(rounds=1)
        deadline = automaton.deadlines[0]
        state = automaton.initial_state(0, 3)
        for step in range(1, deadline + 1):
            state = automaton.on_step(
                ctx(automaton, 0, state, local_step=step)
            ).state
        assert state.finished
        # Further steps are inert.
        outcome = automaton.on_step(
            ctx(automaton, 0, state, local_step=deadline + 1)
        )
        assert outcome.send_to is None

    def test_values_length_checked(self):
        with pytest.raises(ConfigurationError):
            RoundOnSSAutomaton(FloodSet(), 3, 1, [0, 1], 1, 1, 2)

    def test_deadlines_monotone(self):
        deadlines = round_deadlines(4, 2, 3, 5)
        assert all(b > a for a, b in zip(deadlines, deadlines[1:]))


class TestRoundOnSPInternals:
    def make_automaton(self, rounds=2):
        return RoundOnSPAutomaton(FloodSet(), 3, 1, [0, 1, 2], rounds)

    def test_round_completion_needs_all_sends_first(self):
        automaton = self.make_automaton()
        state = automaton.initial_state(0, 3)
        # First step sends to p1; outbox still holds p2's copy, so the
        # round cannot complete even with everything heard + suspected.
        outcome = automaton.on_step(
            ctx(automaton, 0, state,
                received=[(1, (1, frozenset({1}))), (2, (1, frozenset({2})))])
        )
        assert outcome.state.round == 1
        assert outcome.send_to == 1

    def test_completes_on_heard_from_everyone(self):
        automaton = self.make_automaton()
        state = automaton.initial_state(0, 3)
        state = automaton.on_step(ctx(automaton, 0, state)).state
        state = automaton.on_step(
            ctx(automaton, 0, state,
                received=[(1, (1, frozenset({1}))), (2, (1, frozenset({2})))])
        ).state
        assert state.round == 2

    def test_completes_on_suspicion_of_silent_peer(self):
        automaton = self.make_automaton()
        state = automaton.initial_state(0, 3)
        state = automaton.on_step(ctx(automaton, 0, state)).state
        state = automaton.on_step(
            ctx(automaton, 0, state,
                received=[(1, (1, frozenset({1})))],
                suspects=frozenset({2}))
        ).state
        assert state.round == 2
        # p2's message never arrived: the round was closed without it —
        # a pending message from the abstraction's point of view.
        assert 2 not in state.delivered_log[0][1]

    def test_waits_without_message_or_suspicion(self):
        automaton = self.make_automaton()
        state = automaton.initial_state(0, 3)
        state = automaton.on_step(ctx(automaton, 0, state)).state
        state = automaton.on_step(
            ctx(automaton, 0, state, suspects=frozenset())
        ).state
        assert state.round == 1  # still waiting on p1 and p2

    def test_late_message_of_closed_round_is_ignored(self):
        automaton = self.make_automaton()
        state = automaton.initial_state(0, 3)
        state = automaton.on_step(ctx(automaton, 0, state)).state
        state = automaton.on_step(
            ctx(automaton, 0, state,
                received=[(1, (1, frozenset({1})))],
                suspects=frozenset({2}))
        ).state
        assert state.round == 2
        # p2's round-1 message arrives late: filed, but round 1's
        # delivered_log stays as recorded at completion time.
        state = automaton.on_step(
            ctx(automaton, 0, state,
                received=[(2, (1, frozenset({2})))],
                suspects=frozenset({2}))
        ).state
        assert 2 not in state.delivered_log[0][1]
