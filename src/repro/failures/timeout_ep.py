"""Adaptive timeouts implement ◊P under partial synchrony.

The paper's introduction: "In the system models of [12], time-out
mechanisms can also be used to implement an eventual perfect failure
detector".  The classic construction: heartbeats plus a *per-peer
adaptive timeout* that grows every time a suspicion is refuted by a
late message.  Before the system stabilises the detector may suspect
live processes; each mistake permanently lengthens that peer's
timeout, so once the (unknown) global stabilisation time has passed and
the real bounds hold, timeouts eventually exceed the true inter-
heartbeat gap and false suspicions stop — *eventual* strong accuracy.
Completeness is as for the perfect-detector construction: the crashed
stay silent and silence crosses any timeout.

Run :class:`AdaptiveTimeoutDetector` under
:class:`~repro.models.partial_synchrony.PartiallySynchronousModel` and
lift the output with
:func:`~repro.failures.timeout_p.history_from_run`; experiment-grade
checks live in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import ConfigurationError
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome


@dataclass(frozen=True)
class AdaptiveDetectorState:
    """State of the adaptive heartbeat/timeout module.

    The field names mirror
    :class:`~repro.failures.timeout_p.TimeoutDetectorState` (in
    particular ``suspected``) so the same history-lifting helpers work.
    """

    last_heard: Mapping[int, int] = field(default_factory=dict)
    timeouts: Mapping[int, int] = field(default_factory=dict)
    suspected: frozenset[int] = frozenset()
    next_target: int = 0
    local_step: int = 0


class AdaptiveTimeoutDetector(StepAutomaton):
    """Heartbeats + per-peer growing timeouts: ◊P without known bounds.

    Args:
        n: Number of processes.
        initial_timeout: Starting silence tolerance, in local steps.
            Deliberately small defaults make pre-stabilisation mistakes
            (and hence the *eventual* in ◊P) observable.
        backoff: Added to a peer's timeout whenever a suspicion of it
            is refuted.
    """

    def __init__(
        self, n: int, initial_timeout: int = 4, backoff: int = 4
    ) -> None:
        if n < 2:
            raise ConfigurationError("detector needs at least 2 processes")
        if initial_timeout < 1 or backoff < 1:
            raise ConfigurationError(
                "initial_timeout and backoff must be >= 1"
            )
        self.n = n
        self.initial_timeout = initial_timeout
        self.backoff = backoff

    def initial_state(self, pid: int, n: int) -> AdaptiveDetectorState:
        peers = [q for q in range(n) if q != pid]
        return AdaptiveDetectorState(
            last_heard={q: 0 for q in peers},
            timeouts={q: self.initial_timeout for q in peers},
        )

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: AdaptiveDetectorState = ctx.state
        local_step = state.local_step + 1
        last_heard = dict(state.last_heard)
        timeouts = dict(state.timeouts)
        suspected = set(state.suspected)

        for message in ctx.received:
            sender = message.sender
            last_heard[sender] = local_step
            if sender in suspected:
                # A refuted suspicion: trust again, back off the timer.
                suspected.discard(sender)
                timeouts[sender] = timeouts[sender] + self.backoff

        for peer, heard in last_heard.items():
            if local_step - heard > timeouts[peer]:
                suspected.add(peer)

        peers = [q for q in range(self.n) if q != ctx.pid]
        target = peers[state.next_target % len(peers)]
        return StepOutcome(
            state=replace(
                state,
                last_heard=last_heard,
                timeouts=timeouts,
                suspected=frozenset(suspected),
                next_target=(state.next_target + 1) % len(peers),
                local_step=local_step,
            ),
            send_to=target,
            payload="heartbeat",
        )
