#!/usr/bin/env python
"""Validate a JSONL event trace: schema plus ordering invariants.

Usage::

    PYTHONPATH=src python scripts/check_trace.py [--schema-only] TRACE.jsonl

Two layers of validation:

1. **Schema** — every line is a well-formed event dict (known kind,
   correctly-typed fields), via ``repro.obs.validate_jsonl_lines``.
2. **Ordering** — the event *sequence* is well-formed: rounds start at
   1 and increase by exactly 1, global step times are monotone, alive
   lists match the crash history, and no process acts after its crash
   or halt — via ``repro.obs.ordering_problems``.  Skipped with
   ``--schema-only`` (or automatically when the schema layer already
   failed, since ordering over malformed events is noise).

Exits 0 when the trace is valid, 1 otherwise (listing each problem),
2 on usage errors.  Used by ``make trace-smoke`` and the CLI tests.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    schema_only = "--schema-only" in args
    args = [a for a in args if a != "--schema-only"]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        from repro.obs import (
            events_from_jsonl_lines,
            ordering_problems,
            validate_jsonl_lines,
        )
    except ImportError:
        print(
            "cannot import repro.obs — run with PYTHONPATH=src or after "
            "`pip install -e .`",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args[0], encoding="utf-8") as fp:
            lines = fp.readlines()
    except OSError as exc:
        print(f"cannot read {args[0]}: {exc}", file=sys.stderr)
        return 2
    problems = validate_jsonl_lines(lines)
    if not problems and not schema_only:
        events = events_from_jsonl_lines(lines)
        problems = ordering_problems(events)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args[0]}: INVALID ({len(problems)} problems)")
        return 1
    checked = "schema" if schema_only else "schema + ordering"
    print(f"{args[0]}: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
