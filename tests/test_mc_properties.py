"""Verdicts: property judgements, serialization, witness replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.fuzz.campaign import REPRO_KIND, load_counterexample
from repro.mc import McTask, check
from repro.mc.properties import default_lambda_bound, parse_bound
from repro.mc.verdict import Verdict
from repro.runtime.harness import execute_request


def _check(property_name, algorithm, **kwargs):
    defaults = dict(
        property_name=property_name,
        algorithm=algorithm,
        n=3,
        t=1,
        model="RS",
        horizon=3,
    )
    defaults.update(kwargs)
    return check(McTask(**defaults))


class TestVerdicts:
    def test_floodset_rs_agreement_holds_exhaustively(self):
        verdict = _check("agreement", "floodset").verdict
        assert verdict.holds
        assert verdict.label == "HOLDS(exhaustive)"
        assert verdict.stats["cells"] == verdict.stats["leaves"]
        assert not verdict.witnesses

    def test_floodset_rws_agreement_is_refuted(self):
        # Theorem 5.2's engine room: plain FloodSet run under RWS
        # (crash-and-withhold) violates agreement within the bounded
        # frontier, and the checker produces a shrunk witness.
        outcome = _check("agreement", "floodset", model="RWS")
        verdict = outcome.verdict
        assert not verdict.holds
        assert verdict.label == "REFUTED"
        assert verdict.witnesses
        assert outcome.witness_requests
        first = verdict.witnesses[0]
        assert first["kind"] == REPRO_KIND
        assert first["property"] == "agreement"
        assert first["shrink_attempts"] > 0

    def test_floodset_ws_rws_agreement_holds(self):
        verdict = _check("agreement", "floodset-ws", model="RWS").verdict
        assert verdict.holds

    def test_uniform_agreement_and_validity_hold_for_floodset_rs(self):
        for prop in ("uniform-agreement", "validity"):
            assert _check(prop, "floodset").verdict.holds, prop

    def test_indistinguishability_holds(self):
        verdict = _check("indistinguishability", "floodset").verdict
        assert verdict.holds

    def test_lambda_a1_is_exactly_one(self):
        verdict = _check("lambda", "a1").verdict
        assert verdict.holds
        assert verdict.details["lambda"] == 1
        assert verdict.details["bound"] == "==1"

    def test_lambda_floodset_is_t_plus_one(self):
        verdict = _check("lambda", "floodset").verdict
        assert verdict.holds
        assert verdict.details["lambda"] == 2

    def test_lambda_rws_lower_bound(self):
        verdict = _check(
            "lambda", "floodset-ws", model="RWS", horizon=4
        ).verdict
        assert verdict.holds
        assert verdict.details["bound"] == ">=2"
        assert verdict.details["lambda"] >= 2

    def test_grid_scope_is_not_exhaustive(self):
        verdict = _check("agreement", "floodset", engine="rs_on_ss").verdict
        assert verdict.holds
        assert verdict.label == "HOLDS(grid)"

    def test_planted_bug_is_refuted_on_the_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_BUG", "ss-drop-received")
        outcome = _check(
            "agreement", "floodset", engine="rs_on_ss", shrink_witness=False
        )
        assert not outcome.verdict.holds
        assert outcome.verdict.to_dict()["injected_bug"] == "ss-drop-received"
        assert outcome.verdict.witnesses


class TestWitnessReplay:
    def test_witness_replays_byte_identically(self, tmp_path):
        outcome = _check("agreement", "floodset", model="RWS")
        request = outcome.witness_requests[0]
        first = execute_request(request)
        second = execute_request(request)
        assert first.to_dict() == second.to_dict()
        # The replay oracles themselves must flag the run: the witness
        # carries check_consensus so `repro replay` fails loudly.
        assert request.check_consensus

    def test_witness_document_loads_via_fuzz_pipeline(self, tmp_path):
        outcome = _check("agreement", "floodset", model="RWS")
        path = tmp_path / "witness.json"
        path.write_text(
            json.dumps(outcome.verdict.witnesses[0], default=repr)
        )
        request, document = load_counterexample(str(path))
        assert request.to_dict() == outcome.witness_requests[0].to_dict()
        assert document["property"] == "agreement"


class TestSerialization:
    def test_verdict_round_trips(self):
        verdict = _check("agreement", "floodset", model="RWS").verdict
        data = json.loads(verdict.to_json())
        assert data["kind"] == "mc-verdict"
        restored = Verdict.from_dict(data)
        assert restored.to_dict() == verdict.to_dict()
        for key in ("states_visited", "revisit_pruned", "dominance_pruned"):
            assert key in restored.stats

    def test_stats_are_deterministic_across_runs(self):
        first = _check("agreement", "floodset").verdict
        second = _check("agreement", "floodset").verdict
        assert first.to_dict() == second.to_dict()

    def test_from_dict_rejects_other_kinds(self):
        with pytest.raises(ConfigurationError):
            Verdict.from_dict({"kind": "repro-counterexample"})


class TestTaskValidation:
    def test_unknown_property_is_rejected(self):
        with pytest.raises(ConfigurationError):
            McTask(property_name="liveness", algorithm="floodset").validate()

    def test_a1_requires_t_equals_one(self):
        with pytest.raises(ConfigurationError):
            McTask(
                property_name="agreement", algorithm="a1", t=2
            ).validate()

    def test_parse_bound(self):
        assert parse_bound("==1") == ("==", 1)
        assert parse_bound(">=2") == (">=", 2)
        assert parse_bound("<=3") == ("<=", 3)
        with pytest.raises(ConfigurationError):
            parse_bound("~4")

    def test_default_bounds_follow_the_paper(self):
        assert default_lambda_bound("a1", "RS", 1) == "==1"
        assert default_lambda_bound("floodset", "RWS", 1) == ">=2"
        assert default_lambda_bound("floodset", "RS", 2) == "==3"
