"""Kernel microbenchmarks: the substrate's raw costs.

Not tied to a paper artefact — these quantify the building blocks every
experiment pays for (step execution, SS scheduling, round execution,
scenario enumeration), so regressions in the substrate are visible
independently of the experiment-level numbers.
"""

import random

from repro.consensus import FloodSet
from repro.failures import FailurePattern
from repro.models import SSScheduler, SynchronousModel
from repro.obs import CompositeObserver, EventLog, MetricsObserver
from repro.rounds import FailureScenario, RoundModel, all_scenarios, run_rs
from repro.rounds.executor import execute
from repro.simulation import RoundRobinScheduler, StepExecutor
from repro.simulation.automaton import IdleAutomaton


def bench_step_executor_throughput(benchmark):
    """1000 kernel steps under the round-robin scheduler."""
    pattern = FailurePattern.crash_free(4)

    def run_1000_steps():
        executor = StepExecutor(
            IdleAutomaton(), 4, pattern, RoundRobinScheduler()
        )
        return executor.execute(1000)

    run = benchmark(run_1000_steps)
    assert len(run.schedule) == 1000


def bench_ss_scheduler_throughput(benchmark):
    """1000 kernel steps under the Φ/Δ-respecting SS scheduler."""
    pattern = FailurePattern.crash_free(4)

    def run_1000_steps():
        executor = StepExecutor(
            IdleAutomaton(),
            4,
            pattern,
            SSScheduler(2, 2, rng=random.Random(3)),
        )
        return executor.execute(1000)

    run = benchmark(run_1000_steps)
    assert len(run.schedule) == 1000


def bench_single_round_run(benchmark):
    """One FloodSet execution in RS (the unit of every sweep)."""
    scenario = FailureScenario.failure_free(3)
    run = benchmark(run_rs, FloodSet(), [0, 1, 1], scenario, t=1)
    assert run.latency() == 2


def bench_single_round_run_observed(benchmark):
    """bench_single_round_run with full tracing + metrics attached.

    The delta against ``bench_single_round_run`` is the *observer-on*
    cost; the observer-off path only pays ``observer is not None``
    checks and must stay within noise of the seed numbers.
    """
    scenario = FailureScenario.failure_free(3)

    def run_observed():
        observer = CompositeObserver(EventLog(), MetricsObserver())
        return run_rs(FloodSet(), [0, 1, 1], scenario, t=1, observer=observer)

    run = benchmark(run_observed)
    assert run.latency() == 2


def bench_step_executor_observed(benchmark):
    """1000 observed kernel steps (EventLog attached)."""
    pattern = FailurePattern.crash_free(4)

    def run_1000_steps():
        executor = StepExecutor(
            IdleAutomaton(),
            4,
            pattern,
            RoundRobinScheduler(),
            observer=EventLog(),
        )
        return executor.execute(1000)

    run = benchmark(run_1000_steps)
    assert len(run.schedule) == 1000


def bench_scenario_enumeration_rws(benchmark):
    """Materialising the full RWS adversary space for n=3, t=1."""
    scenarios = benchmark(
        lambda: list(all_scenarios(3, 1, max_round=2, allow_pending=True))
    )
    assert len(scenarios) > 100
    benchmark.extra_info["scenario_count"] = len(scenarios)


def bench_run_with_validation(benchmark):
    """Scenario validation overhead (execute with validate=True)."""
    scenario = FailureScenario.failure_free(3)
    run = benchmark(
        execute,
        FloodSet(),
        [0, 1, 1],
        scenario,
        t=1,
        model=RoundModel.RS,
        max_rounds=3,
    )
    assert run.latency() == 2
