"""The unified execution runtime: requests, harnesses, spaces, sweeps.

The determinism contract under test is the PR's headline: the same
scenario space produces *byte-identical* merged JSONL traces and equal
metrics aggregates whether it runs serially (``jobs=1``), across a
process pool (``jobs=4``), or cache-warm — across both the round
engines and the step-model emulations.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.failures import FailurePattern
from repro.runtime.request import batch_cache_keys
from repro.runtime import (
    ExecutionRequest,
    ExecutionResult,
    ResultCache,
    ScenarioSpace,
    SweepRunner,
    derived_seed,
    e10_lambda_space,
    execute_request,
    harness_for,
    make_algorithm,
    oracle_sweep_space,
    parallel_map,
    run_space,
    space_by_name,
)
from repro.workloads import adversarial_split, failure_free


def _round_request(name="cell", **overrides):
    defaults = dict(
        name=name,
        engine="rounds",
        algorithm="floodset",
        values=adversarial_split(3),
        t=1,
        model="RS",
        scenario=failure_free(3),
        max_rounds=4,
    )
    defaults.update(overrides)
    return ExecutionRequest(**defaults)


def _emulation_request(engine="rs_on_ss"):
    params = (
        ()
        if engine == "rs_on_ss"
        else (
            ("max_detection_delay", 2),
            ("delivery_prob", 0.15),
            ("max_age", 80),
        )
    )
    return ExecutionRequest(
        name=f"emu-{engine}",
        engine=engine,
        algorithm="floodset",
        values=adversarial_split(3),
        t=1,
        pattern=FailurePattern.with_crashes(3, {0: 7}),
        max_rounds=2,
        seed=3,
        params=params,
        check_consensus=False,
    )


class TestExecutionRequest:
    def test_round_trip_through_dict(self):
        request = _round_request()
        assert ExecutionRequest.from_dict(request.to_dict()) == request

    def test_emulation_round_trip_through_dict(self):
        request = _emulation_request("rws_on_sp")
        assert ExecutionRequest.from_dict(request.to_dict()) == request

    def test_cache_key_is_stable_and_content_sensitive(self):
        a, b = _round_request(), _round_request()
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != _round_request(model="RWS").cache_key()
        assert a.cache_key() != _round_request(max_rounds=5).cache_key()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            _round_request(engine="warp")

    def test_rounds_requires_scenario_and_model(self):
        with pytest.raises(ConfigurationError):
            _round_request(scenario=None)
        with pytest.raises(ConfigurationError):
            _round_request(model=None)

    def test_emulation_requires_pattern(self):
        with pytest.raises(ConfigurationError):
            ExecutionRequest(
                name="bad",
                engine="rs_on_ss",
                algorithm="floodset",
                values=(0, 1, 1),
                pattern=None,
            )

    def test_unknown_algorithm_rejected_at_execution(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("quantum-floodset")


class TestHarnesses:
    @pytest.mark.parametrize("engine", ["rounds", "rs_on_ss", "rws_on_sp"])
    def test_harness_selected_by_engine(self, engine):
        assert harness_for(engine).engine == engine

    def test_round_execution_decides(self):
        result = execute_request(_round_request())
        assert result.decisions
        assert result.latency is not None
        assert result.events
        assert result.metrics["counters"]

    def test_execution_is_deterministic(self):
        a = execute_request(_round_request())
        b = execute_request(_round_request())
        assert [e.to_json() for e in a.events] == [
            e.to_json() for e in b.events
        ]
        assert a.metrics == b.metrics

    @pytest.mark.parametrize("engine", ["rs_on_ss", "rws_on_sp"])
    def test_emulation_execution_produces_trace(self, engine):
        result = execute_request(_emulation_request(engine))
        assert result.events
        assert result.num_rounds >= 1

    def test_result_round_trips_through_dict(self):
        result = execute_request(_round_request())
        rebuilt = ExecutionResult.from_dict(result.to_dict())
        assert [e.to_json() for e in rebuilt.events] == [
            e.to_json() for e in result.events
        ]
        assert rebuilt.decisions == result.decisions
        assert rebuilt.metrics == result.metrics


class TestScenarioSpace:
    def test_duplicate_cell_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpace.explicit(
                "dup", [_round_request("same"), _round_request("same")]
            )

    def test_derived_seeds_are_stable_and_distinct(self):
        assert derived_seed(42, 0) == derived_seed(42, 0)
        assert derived_seed(42, 0) != derived_seed(42, 1)
        assert derived_seed(42, 0) != derived_seed(43, 0)

    def test_random_stream_depends_only_on_seed_and_index(self):
        a = ScenarioSpace.random_rounds(
            "s", algorithm="floodset", model="RWS", n=4, count=5, seed=9
        )
        b = ScenarioSpace.random_rounds(
            "s", algorithm="floodset", model="RWS", n=4, count=5, seed=9
        )
        assert [r.cache_key() for r in a] == [r.cache_key() for r in b]
        c = ScenarioSpace.random_rounds(
            "s", algorithm="floodset", model="RWS", n=4, count=5, seed=10
        )
        assert [r.cache_key() for r in a] != [r.cache_key() for r in c]

    def test_space_by_name_catalogue(self):
        assert len(space_by_name("oracle-sweep", count=2)) == 14
        with pytest.raises(ConfigurationError):
            space_by_name("no-such-space")


class TestSweepDeterminism:
    """jobs=1 and jobs=4 must be byte-identical, for every engine."""

    @pytest.fixture(scope="class")
    def space(self):
        # Round cells (RS + RWS streams + workloads) *and* both
        # emulation engines: the full oracle-sweep space, small streams.
        return oracle_sweep_space(count=3)

    def test_parallel_matches_serial_byte_for_byte(self, space):
        serial = SweepRunner(jobs=1).run(space)
        parallel = SweepRunner(jobs=4).run(space)
        assert list(serial.merged_jsonl_lines()) == list(
            parallel.merged_jsonl_lines()
        )
        assert serial.metrics.state() == parallel.metrics.state()

    def test_parallel_matches_serial_for_step_engines(self):
        space = ScenarioSpace.explicit(
            "emulations",
            [_emulation_request("rs_on_ss"), _emulation_request("rws_on_sp")],
        )
        serial = run_space(space, jobs=1)
        parallel = run_space(space, jobs=4)
        assert list(serial.merged_jsonl_lines()) == list(
            parallel.merged_jsonl_lines()
        )
        assert serial.metrics.state() == parallel.metrics.state()

    def test_merged_trace_timestamps_are_globally_monotonic(self, space):
        events = SweepRunner(jobs=4).run(space).merged_events()
        timestamps = [event.ts for event in events]
        assert timestamps == [float(i) for i in range(1, len(events) + 1)]


class TestResultCache:
    def test_second_run_executes_nothing_and_matches(self, tmp_path):
        space = oracle_sweep_space(count=2)
        cache_dir = str(tmp_path / "cache")
        cold = SweepRunner(jobs=1, cache=cache_dir).run(space)
        warm = SweepRunner(jobs=1, cache=cache_dir).run(space)
        assert cold.executed == cold.total and cold.cached == 0
        assert warm.executed == 0 and warm.cached == warm.total
        assert list(cold.merged_jsonl_lines()) == list(
            warm.merged_jsonl_lines()
        )
        assert cold.metrics.state() == warm.metrics.state()

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        space = oracle_sweep_space(count=2)
        cache_dir = str(tmp_path / "cache")
        SweepRunner(jobs=4, cache=cache_dir).run(space)
        warm = SweepRunner(jobs=1, cache=cache_dir).run(space)
        assert warm.executed == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        request = _round_request()
        cache.put(request, execute_request(request))
        assert len(cache) == 1
        for entry in tmp_path.iterdir():
            entry.write_text("not json", encoding="utf-8")
        assert cache.get(request) is None


class TestCheckedSweep:
    def test_checked_sweep_flags_expected_disagreements(self):
        result = run_space(oracle_sweep_space(count=2), check=True)
        assert result.checks_ok, result.describe()
        summary = result.describe()
        assert "executed" in summary and "cached" in summary

    def test_unchecked_sweep_has_no_verdicts(self):
        result = run_space(oracle_sweep_space(count=2))
        assert result.checks is None
        assert not result.checks_ok


class TestE10LambdaSpace:
    def test_latency_matches_theorem_5_2(self):
        result = run_space(e10_lambda_space(), check=True)
        assert result.checks_ok, result.describe()
        latency = result.latency_by_algorithm()
        # Λ = worst-case failure-free latency: >= 2 for every safe RWS
        # algorithm, exactly 1 for A1 in RS (Theorem 5.2's gap).
        for name in ("floodset-ws", "c-opt-ws", "f-opt-ws"):
            best, worst = latency[name]
            assert worst is not None and worst >= 2, (name, latency[name])
        assert latency["a1"] == (1, 1)


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == parallel_map(
            _square, items, jobs=4
        )

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []


def _square(x):
    return x * x


# ---------------------------------------------------------------------------
# batch_cache_keys: seeded-fallback property tests (Hypothesis twin in
# tests/test_properties.py).  The campaign fabric shards on these keys,
# so "spliced == reference" and injectivity are load-bearing.
# ---------------------------------------------------------------------------


class TestBatchCacheKeys:
    def _assert_batch_matches_reference(self, requests):
        keys = batch_cache_keys(requests)
        assert keys == [request.cache_key() for request in requests]
        # Injective across distinct cells: equal keys imply equal
        # canonical request content.
        by_key = {}
        for request, key in zip(requests, keys):
            if key in by_key:
                assert by_key[key].to_dict() == request.to_dict()
            by_key[key] = request

    def test_seeded_stream_across_every_engine(self):
        from repro.fuzz.strategies import (
            FUZZ_ENGINES,
            VECTOR_FUZZ_ENGINES,
            generate_case,
        )

        engines = FUZZ_ENGINES + VECTOR_FUZZ_ENGINES
        for seed in (1, 7, 99):
            requests = [
                generate_case(
                    index, seed=seed, engine=engines[index % len(engines)]
                )
                for index in range(24)
            ]
            self._assert_batch_matches_reference(requests)
            assert len(set(batch_cache_keys(requests))) == len(requests)

    def test_awkward_per_cell_fields_still_splice_exactly(self):
        # The spliced fragments cover name/values/seed/flags — exercise
        # the encoder edge cases in exactly those fields: non-int value
        # types (bool twins of ints, floats, strings with JSON
        # metacharacters), unicode names, huge seeds.
        base = _round_request()
        requests = [
            _round_request(name='quote"s\\and\nnewlines'),
            _round_request(name="unicode-Λ-λ-名前"),
            _round_request(values=(0, False, 1)),
            _round_request(values=(True, 1, 0)),
            _round_request(values=(0.5, 1, "x")),
            _round_request(values=("a", "b", "a")),
            _round_request(expect_disagreement=True, check_consensus=False),
            base,
        ]
        emulation = _emulation_request()
        requests.append(emulation)
        import dataclasses

        requests.append(
            dataclasses.replace(emulation, seed=2**62, name="big-seed")
        )
        self._assert_batch_matches_reference(requests)

    def test_shared_scenario_instances_share_fragments(self):
        scenario = failure_free(3)
        requests = [
            _round_request(name=f"cell-{index}", scenario=scenario)
            for index in range(50)
        ]
        keys = batch_cache_keys(requests)
        assert keys == [request.cache_key() for request in requests]
        assert len(set(keys)) == len(requests)

    def test_active_injection_falls_back_to_reference(self, monkeypatch):
        from repro.inject import INJECT_ENV, KNOWN_INJECTIONS

        name = next(iter(KNOWN_INJECTIONS))
        requests = [_round_request(name=f"cell-{i}") for i in range(4)]
        clean = batch_cache_keys(requests)
        monkeypatch.setenv(INJECT_ENV, name)
        injected = batch_cache_keys(requests)
        assert injected == [request.cache_key() for request in requests]
        # The injected marker must change every key (separate cache).
        assert set(clean).isdisjoint(injected)


# ---------------------------------------------------------------------------
# ResultCache concurrency: the shared store behind the serve fabric
# ---------------------------------------------------------------------------


def _hammer_same_key(arg):
    directory, tag = arg
    request = _round_request()
    result = ExecutionResult(
        name=request.name,
        request_key=request.cache_key(),
        events=[],
        metrics={},
        decisions={0: (1, 1)},
        latency=1,
        num_rounds=1,
        # Big enough that a torn (non-atomic) write would truncate
        # mid-payload and fail to parse on read-back.
        extra={"writer": tag, "pad": "x" * 200_000},
    )
    ResultCache(str(directory)).put(request, result)
    return tag


class TestResultCacheConcurrency:
    def test_concurrent_same_key_writes_never_tear(self, tmp_path):
        directory = tmp_path / "cache"
        parallel_map(
            _hammer_same_key,
            [(directory, tag) for tag in range(16)],
            jobs=8,
        )
        cache = ResultCache(str(directory))
        assert len(cache) == 1
        # No stray temp files: every mkstemp either renamed or unlinked.
        assert not list(directory.glob(".tmp-*"))
        entry = cache.get(_round_request())
        assert entry is not None, "the winning write must parse whole"
        assert entry.extra["writer"] in range(16)
        assert len(entry.extra["pad"]) == 200_000
        assert cache.stats.corrupt_evictions == 0
        assert cache.stats.hits == 1

    def test_torn_entry_eviction_surfaces_in_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        request = _round_request()
        result = execute_request(request)
        cache.put(request, result)
        path = cache._path(request.cache_key())
        # Simulate a writer killed mid-write: truncate the entry.
        path.write_text(
            path.read_text(encoding="utf-8")[:50], encoding="utf-8"
        )
        assert cache.get(request) is None
        assert cache.stats.corrupt_evictions == 1
        assert not path.exists(), "the corpse is evicted, not kept"
        # The slot re-fills and the tally sticks.
        cache.put(request, result)
        assert cache.get(request) is not None
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "stores": 2,
            "corrupt_evictions": 1,
        }

    def test_eviction_counts_flow_into_sweep_summary(self, tmp_path):
        space = ScenarioSpace.explicit("tiny", [_round_request()])
        cache_dir = str(tmp_path / "cache")
        first = SweepRunner(cache=cache_dir).run(space)
        assert first.cache_stats["corrupt_evictions"] == 0
        for entry in (tmp_path / "cache").glob("*.json"):
            entry.write_text("{torn", encoding="utf-8")
        second = SweepRunner(cache=cache_dir).run(space)
        assert second.cache_stats["corrupt_evictions"] == 1
        assert second.executed == 1  # served as a miss and re-executed
