"""Early-deciding baselines: the consensus vs uniform consensus gap.

Section 5.1 notes that, unlike in most models, solving consensus in RS
or RWS does *not* automatically solve uniform consensus.  These two
algorithms make the gap concrete:

* :class:`EarlyDecidingConsensus` decides as soon as the round number
  exceeds the number of failures it has observed ("wait out the
  failures you have seen").  It solves plain consensus and decides in
  ``f + 1`` rounds (``f`` = actual crashes), but a process can decide
  on a value it alone has seen and then crash — a uniform agreement
  violation that exhaustive search exhibits for ``t >= 2``.

* :class:`EarlyDecidingUniformFloodSet` waits for a *clean* round — a
  round in which it hears from exactly the same set of processes as in
  the previous round — before deciding.  The extra confirmation round
  restores uniform agreement at the price of one round (``f + 2``),
  matching the folklore gap quantified in the companion paper [7].

Both flood their ``W`` sets while undecided and flood ``(D, decision)``
once decided so laggards adopt the decided value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.consensus.floodset import FloodSetWS
from repro.rounds.algorithm import RoundAlgorithm, broadcast

DECIDED_TAG = "D"


@dataclass(frozen=True)
class EarlyState:
    """Shared state shape for both early-deciding variants."""

    rounds: int
    W: frozenset
    decision: Any
    n: int
    t: int
    last_senders: frozenset = frozenset()
    decided_round: int = 0


class _EarlyBase(RoundAlgorithm):
    """Common flooding/adoption machinery of the two variants."""

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> EarlyState:
        return EarlyState(
            rounds=0, W=frozenset({value}), decision=None, n=n, t=t
        )

    def messages(self, pid: int, state: EarlyState) -> Mapping[int, Any]:
        if state.decision is not None:
            # One forcing round after deciding, then silence.
            if state.rounds == state.decided_round:
                return broadcast((DECIDED_TAG, state.decision), state.n)
            return {}
        if state.rounds <= state.t + 1:
            return broadcast(("W", state.W), state.n)
        return {}

    def transition(
        self, pid: int, state: EarlyState, received: Mapping[int, Any]
    ) -> EarlyState:
        rounds = state.rounds + 1
        W = state.W
        forced = None
        senders = frozenset(received)
        for payload in received.values():
            if payload[0] == DECIDED_TAG:
                forced = payload[1]
            else:
                W = W | payload[1]

        decision = state.decision
        decided_round = state.decided_round
        if decision is None:
            if forced is not None:
                decision = forced
                decided_round = rounds
            elif self._may_decide(rounds, senders, state):
                decision = min(W)
                decided_round = rounds

        return replace(
            state,
            rounds=rounds,
            W=W,
            decision=decision,
            last_senders=senders,
            decided_round=decided_round,
        )

    def _may_decide(
        self, rounds: int, senders: frozenset, state: EarlyState
    ) -> bool:
        raise NotImplementedError

    def decision_of(self, state: EarlyState) -> Any:
        return state.decision

    def halted(self, pid: int, state: EarlyState) -> bool:
        # Quiescent one round after deciding (the forcing broadcast done).
        return state.decision is not None and state.rounds > state.decided_round


class EarlyDecidingConsensus(_EarlyBase):
    """Decide once ``rounds > observed failures``; non-uniform.

    Observed failures are counted as the processes missing from this
    round's reception.  With ``f`` actual crashes at most ``f``
    processes are ever missing, so every correct process decides by
    round ``f + 1``.  Uniform agreement fails for ``t >= 2``: a process
    can be the *sole* recipient of a crashing process's low value,
    observe an apparently failure-free round, decide that value early,
    and crash before relaying it — the survivors then decide without
    the low value (exhibited mechanically by experiment E14).
    """

    name = "EarlyConsensus"

    def _may_decide(
        self, rounds: int, senders: frozenset, state: EarlyState
    ) -> bool:
        observed_failures = state.n - len(senders)
        return observed_failures < rounds


class EarlyDecidingUniformFloodSet(_EarlyBase):
    """Decide on the first *clean* round; uniform, one round slower.

    A round is clean when its sender set equals the previous round's.
    Deciding requires ``rounds >= 2`` by construction.
    """

    name = "EarlyUniform"

    def _may_decide(
        self, rounds: int, senders: frozenset, state: EarlyState
    ) -> bool:
        if rounds < 2:
            return False
        return senders == state.last_senders


class EagerFloodSetWS(RoundAlgorithm):
    """FloodSetWS with a round-1 no-failure fast path — non-uniform in RWS.

    Decide ``min(W)`` at the end of round 1 when messages from all ``n``
    processes arrived (no failure observed); otherwise fall back to the
    FloodSetWS rule at round ``t + 1``.  For ``t = 1`` this solves plain
    consensus in RWS: a round-1 decider saw every initial value, and its
    round-2 ``W`` flood carries them to everyone else (round-2 floods
    from correct processes are never pending).  Uniform agreement fails:
    a process may see all ``n`` values at round 1 (its own round-1
    messages pending towards everyone else), decide the global minimum,
    and crash — the survivors, having halted it, decide without its
    value.  This is the RWS witness for the Section 5.1 remark that
    consensus and uniform consensus genuinely differ.
    """

    name = "EagerFloodSetWS"

    def __init__(self) -> None:
        self._inner = FloodSetWS()

    def initial_state(self, pid: int, n: int, t: int, value: Any):
        return self._inner.initial_state(pid, n, t, value)

    def messages(self, pid: int, state) -> Mapping[int, Any]:
        return self._inner.messages(pid, state)

    def transition(self, pid: int, state, received: Mapping[int, Any]):
        new_state = self._inner.transition(pid, state, received)
        if (
            new_state.rounds == 1
            and new_state.decision is None
            and len(received) == state.n
        ):
            new_state = replace(new_state, decision=min(new_state.W))
        return new_state

    def decision_of(self, state) -> Any:
        return self._inner.decision_of(state)

    def halted(self, pid: int, state) -> bool:
        # Even a round-1 decider keeps flooding W through round t+1 so
        # laggards receive every value it saw.
        return state.rounds > state.t
