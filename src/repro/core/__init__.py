"""High-level API: the paper's experiments, runnable by id.

The :data:`~repro.core.experiments.EXPERIMENTS` registry maps the
experiment ids of DESIGN.md (E1–E15) to runnable functions; each
returns an :class:`~repro.core.experiments.ExperimentResult` comparing
the paper's claim to what this library measures.  The command-line
interface (``python -m repro``), the benchmark suite and EXPERIMENTS.md
all draw from this single source.
"""

from repro.core.experiments import (
    ExperimentResult,
    EXPERIMENTS,
    run_experiment,
    run_all_experiments,
)
from repro.core.extensions import (
    EXTENSIONS,
    run_extension,
    run_all_extensions,
)
from repro.core.report import generate_report, write_report

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "run_all_experiments",
    "EXTENSIONS",
    "run_extension",
    "run_all_extensions",
    "generate_report",
    "write_report",
]
