"""Theorem 3.1, mechanised: SDD is unsolvable in SP.

The proof constructs four runs; we execute all four against any
candidate receiver and report which SDD clause breaks:

* ``r0`` — the sender has value 0 and is *initially dead* (takes no
  step); the receiver suspects it from the start.
* ``r0'`` — the sender has value 0, takes exactly one step (the send),
  and crashes; the message experiences an arbitrarily long delay and is
  never delivered within the prefix.  The receiver's observation
  sequence — no messages, sender suspected at every query — is
  **identical** to ``r0``.
* ``r1``, ``r1'`` — the same two runs with sender value 1.

A deterministic receiver therefore decides the same value ``d`` in all
four runs.  Validity in ``r0'`` forces ``d = 0``; validity in ``r1'``
forces ``d = 1`` — contradiction.  Every concrete candidate must thus
violate validity (or termination, by never deciding) in at least one of
the four runs; :func:`refute_sdd_candidate` exhibits the violation.

The histories used are legitimate perfect-detector histories: in every
run the sender really has crashed by the time the receiver's module
reports the suspicion (in ``r0'``/``r1'`` the sender crashes at time 1
and the receiver's first query is at time 1).  The construction only
exploits the two slacks SP genuinely has — unbounded message delay and
unbounded detection *timing* freedom within the axioms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.failures.history import ConstantHistory
from repro.failures.pattern import FailurePattern
from repro.obs.events import EventLog, logical_clock
from repro.sdd.spec import RECEIVER, SENDER, check_sdd_run, sdd_decision
from repro.sdd.ss_algorithm import ReceiverState, SDDSender
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome
from repro.simulation.executor import StepExecutor
from repro.simulation.run import Run
from repro.simulation.schedulers import ScriptedScheduler


# ---------------------------------------------------------------------------
# Candidate SP receivers.  Each records decisions in ``state.decisions``.
# ---------------------------------------------------------------------------


class TimeoutReceiverSP(StepAutomaton):
    """Decide after a fixed number of steps — a hopeless timeout in SP.

    With no Φ/Δ bounds, no constant is long enough: the adversary just
    delays the sender's message past the deadline.
    """

    def __init__(self, deadline: int = 10, default: Any = 0) -> None:
        self.deadline = deadline
        self.default = default

    def initial_state(self, pid: int, n: int) -> ReceiverState:
        return ReceiverState()

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: ReceiverState = ctx.state
        steps_taken = state.steps_taken + 1
        received_value = state.received_value
        for message in ctx.received:
            received_value = message.payload
        decisions = state.decisions
        if steps_taken >= self.deadline and not decisions:
            decisions = (
                received_value if received_value is not None else self.default,
            )
        return StepOutcome(
            state=replace(
                state,
                steps_taken=steps_taken,
                received_value=received_value,
                decisions=decisions,
            )
        )


class SuspicionReceiverSP(StepAutomaton):
    """Decide the received value, or the default upon suspecting the sender.

    The natural use of the perfect detector — and precisely the
    receiver defeated by ``r0'``: the suspicion is correct (the sender
    did crash) yet the sender was not initially dead, so deciding the
    default violates validity.
    """

    def __init__(self, default: Any = 0) -> None:
        self.default = default

    def initial_state(self, pid: int, n: int) -> ReceiverState:
        return ReceiverState()

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: ReceiverState = ctx.state
        steps_taken = state.steps_taken + 1
        received_value = state.received_value
        for message in ctx.received:
            received_value = message.payload
        decisions = state.decisions
        if not decisions:
            if received_value is not None:
                decisions = (received_value,)
            elif ctx.suspects and SENDER in ctx.suspects:
                decisions = (self.default,)
        return StepOutcome(
            state=replace(
                state,
                steps_taken=steps_taken,
                received_value=received_value,
                decisions=decisions,
            )
        )


@dataclass(frozen=True)
class PatientReceiverState(ReceiverState):
    """Receiver state extended with the step at which suspicion began."""

    first_suspected: int | None = None


class PatientReceiverSP(StepAutomaton):
    """Suspicion plus a grace period — still defeated.

    After suspecting the sender it waits ``grace`` further steps hoping
    the value shows up late.  Message delay in SP is finite but
    *unbounded*, so no finite grace period helps.
    """

    def __init__(self, grace: int = 5, default: Any = 0) -> None:
        self.grace = grace
        self.default = default

    def initial_state(self, pid: int, n: int) -> PatientReceiverState:
        return PatientReceiverState()

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: PatientReceiverState = ctx.state
        steps_taken = state.steps_taken + 1
        received_value = state.received_value
        for message in ctx.received:
            received_value = message.payload
        decisions = state.decisions
        suspected = bool(ctx.suspects and SENDER in ctx.suspects)
        first_suspected = state.first_suspected
        if suspected and first_suspected is None:
            first_suspected = steps_taken
        if not decisions:
            if received_value is not None:
                decisions = (received_value,)
            elif (
                first_suspected is not None
                and steps_taken - first_suspected >= self.grace
            ):
                decisions = (self.default,)
        return StepOutcome(
            state=replace(
                state,
                steps_taken=steps_taken,
                received_value=received_value,
                decisions=decisions,
                first_suspected=first_suspected,
            )
        )


#: Named factories for the candidate pool used by tests and experiment E2.
SP_CANDIDATE_FACTORIES: dict[str, Callable[[], StepAutomaton]] = {
    "timeout": lambda: TimeoutReceiverSP(deadline=10),
    "suspicion": lambda: SuspicionReceiverSP(),
    "patient": lambda: PatientReceiverSP(grace=5),
}


# ---------------------------------------------------------------------------
# The run-quadruple refuter.
# ---------------------------------------------------------------------------


@dataclass
class SDDRefutation:
    """The outcome of running a candidate through the Theorem 3.1 runs."""

    candidate: str
    decisions: dict[str, Any]  # run name -> receiver decision (or None)
    violations: dict[str, list[str]]  # run name -> violated clauses
    refuted: bool

    def describe(self) -> str:
        lines = [f"candidate {self.candidate!r}:"]
        for name in ("r0", "r0'", "r1", "r1'"):
            decision = self.decisions.get(name)
            problems = self.violations.get(name, [])
            status = "; ".join(problems) if problems else "ok"
            lines.append(f"  {name}: decision={decision!r} -> {status}")
        lines.append(
            "  => refuted" if self.refuted else "  => NOT refuted (unexpected)"
        )
        return "\n".join(lines)


#: The four runs of Theorem 3.1 as (sender value, sender steps) pairs.
QUADRUPLE = {
    "r0": (0, 0),
    "r0'": (0, 1),
    "r1": (1, 0),
    "r1'": (1, 1),
}


def _run_quadruple_member(
    receiver: StepAutomaton,
    sender_value: Any,
    sender_steps: int,
    horizon: int,
    observer: Any = None,
) -> Run:
    """Execute one of the four runs.

    ``sender_steps`` is 0 for the initially-dead variant and 1 for the
    send-then-crash variant.  The receiver's message deliveries are
    always empty (the sent message is delayed past the prefix) and its
    detector reports the sender suspected at every query — a valid
    perfect-detector history since the sender has crashed by the
    receiver's first step in both variants.
    """
    crash_time = 0 if sender_steps == 0 else 1
    pattern = FailurePattern.with_crashes(2, {SENDER: crash_time})
    script: list[tuple[int, object]] = []
    script.extend((SENDER, "all") for _ in range(sender_steps))
    script.extend((RECEIVER, ()) for _ in range(horizon))
    executor = StepExecutor(
        [SDDSender(sender_value), receiver],
        2,
        pattern,
        ScriptedScheduler(script),
        history=ConstantHistory({SENDER}),
        observer=observer,
    )

    def receiver_decided(states) -> bool:
        return bool(states[RECEIVER].decisions)

    return executor.execute(
        sender_steps + horizon, stop_when=receiver_decided
    )


def refute_sdd_candidate(
    factory: Callable[[], StepAutomaton],
    name: str = "candidate",
    *,
    horizon: int = 200,
) -> SDDRefutation:
    """Run a candidate receiver through the Theorem 3.1 quadruple.

    A fresh receiver instance is built per run (factories keep the
    candidates stateless across runs).  Returns the per-run decisions
    and violated clauses; ``refuted`` is True when at least one run
    violates the SDD specification — which Theorem 3.1 guarantees for
    every candidate.
    """
    decisions: dict[str, Any] = {}
    violations: dict[str, list[str]] = {}
    for run_name, (value, sender_steps) in QUADRUPLE.items():
        run = _run_quadruple_member(factory(), value, sender_steps, horizon)
        verdict = check_sdd_run(run, value)
        decisions[run_name] = sdd_decision(run)
        violations[run_name] = verdict.violations
    refuted = any(problems for problems in violations.values())
    return SDDRefutation(
        candidate=name,
        decisions=decisions,
        violations=violations,
        refuted=refuted,
    )


def sdd_quadruple_traces(
    factory: Callable[[], StepAutomaton],
    *,
    horizon: int = 200,
) -> dict[str, EventLog]:
    """Execute the Theorem 3.1 quadruple under event logging.

    Returns one :class:`EventLog` per run name (``r0``, ``r0'``,
    ``r1``, ``r1'``), each recorded with a deterministic logical clock
    and carrying a lifted ``decide`` event when the receiver decides.
    The receiver's *local views* (see :func:`repro.obs.diff.local_view`)
    of ``r0`` vs ``r0'`` — and of ``r1`` vs ``r1'`` — are
    indistinguishable, which is exactly the proof's pivot: a
    deterministic receiver must decide the same value in both members
    of each pair.
    """
    traces: dict[str, EventLog] = {}
    for run_name, (value, sender_steps) in QUADRUPLE.items():
        log = EventLog(clock=logical_clock())
        run = _run_quadruple_member(
            factory(), value, sender_steps, horizon, observer=log
        )
        decision = sdd_decision(run)
        if decision is not None:
            log.decide(RECEIVER, decision)
        traces[run_name] = log
    return traces
