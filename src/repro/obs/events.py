"""Typed, timestamped structured events and the observer protocol.

The taxonomy is deliberately small and closed — eight kinds, each a
direct counterpart of a concept in the paper's run vocabulary:

==============  ==============================================
``round_start``  a round-model round begins
``msg_sent``     a message reached the network
``msg_withheld`` a sent message was withheld from its recipient
                 this round (RWS pending messages)
``msg_delivered`` a message was received
``crash``        a process crashed
``suspect``      a detector module began suspecting a process
``decide``       a process decided a value
``halt``         a process halted (will never send again)
==============  ==============================================

Observers receive these through typed hook methods rather than a single
``emit(event)`` funnel so that engines never build :class:`Event`
objects — or compute their fields — unless an observer actually wants
them.  The base :class:`Observer` implements every hook as a no-op;
engines additionally guard each call site with ``observer is not
None``, which keeps the uninstrumented path free of any allocation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Iterable, Iterator, Sequence, TextIO

#: The closed set of event kinds an :class:`EventLog` may contain.
EVENT_KINDS: frozenset[str] = frozenset(
    {
        "round_start",
        "msg_sent",
        "msg_withheld",
        "msg_delivered",
        "crash",
        "suspect",
        "decide",
        "halt",
    }
)


@dataclass(frozen=True)
class Event:
    """One structured observation.

    Attributes:
        kind: One of :data:`EVENT_KINDS`.
        ts: ``perf_counter`` timestamp at record time (wall-clock
            profile; not comparable across processes or logs).
        round: Round index for round-model events (1-based), if any.
        time: Global step time for step-model events, if any.
        pid: The process the event is about (recipient for deliveries,
            observer for suspicions).
        peer: The other process involved (sender for message events,
            the suspected process for ``suspect``).
        value: Event-specific payload (decision value, suspicion
            delay, ...).
        extra: Optional side-channel mapping of causal / wall-clock
            metadata (``msg_id``, ``wall_s``, retransmit counts,
            detector forensics).  Only the live runtime populates it;
            the deterministic engines never do, so their traces stay
            byte-identical with causal tracing enabled.  Excluded from
            equality so replay comparisons ignore it.
    """

    kind: str
    ts: float
    round: int | None = None
    time: int | None = None
    pid: int | None = None
    peer: int | None = None
    value: Any = None
    extra: Any = field(default=None, compare=False)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict, omitting unset fields."""
        out: dict[str, Any] = {"kind": self.kind, "ts": self.ts}
        for key in ("round", "time", "pid", "peer", "value", "extra"):
            val = getattr(self, key)
            if val is not None:
                out[key] = val
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=repr, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Event":
        """Rebuild an event from a decoded JSONL object.

        Inverse of :meth:`to_dict` — unset optional fields come back as
        ``None``, so ``from_dict(e.to_dict()) == e`` for events whose
        ``value`` survives a JSON round trip.
        """
        return cls(
            kind=data["kind"],
            ts=data.get("ts", 0.0),
            round=data.get("round"),
            time=data.get("time"),
            pid=data.get("pid"),
            peer=data.get("peer"),
            value=data.get("value"),
            extra=data.get("extra"),
        )


def logical_clock() -> Callable[[], float]:
    """A deterministic timestamp source: 1.0, 2.0, 3.0, ...

    Inject into :class:`EventLog` to make exported traces reproducible
    byte-for-byte — the clock ``repro trace`` and ``repro replay`` use
    so that re-executions can be compared against the original export.
    """
    counter = count(1)
    return lambda: float(next(counter))


def events_from_jsonl_lines(lines: Iterable[str]) -> list[Event]:
    """Parse a JSONL trace back into :class:`Event` objects.

    Blank lines are skipped.  Raises :class:`ValueError` naming the line
    number on malformed JSON or non-object lines; schema-level problems
    (unknown kinds, missing fields) are the business of
    :func:`repro.obs.schema.validate_jsonl_lines`, run it first.
    """
    events: list[Event] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {number}: not valid JSON ({exc})") from exc
        if not isinstance(data, dict):
            raise ValueError(f"line {number}: event must be a JSON object")
        events.append(Event.from_dict(data))
    return events


def clock_kind(events: Sequence[Event]) -> str:
    """Classify a trace's timestamp source: ``"logical"`` or ``"wall"``.

    :func:`logical_clock` stamps are exactly ``1.0, 2.0, 3.0, ...`` in
    record order; anything else (``perf_counter`` floats) is wall
    clock.  Comparing timestamps across one of each is meaningless —
    ``repro diff`` and the report layer warn on the mix.
    """
    if not events:
        return "logical"
    for index, event in enumerate(events, start=1):
        if event.ts != float(index):
            return "wall"
    return "logical"


class Observer:
    """The event protocol: every hook is a no-op by default.

    Subclass and override the hooks you care about.  All hooks take the
    minimum information the engines have on hand; none return anything.

    Two causal side channels ride along every hook:

    * ``msg_id`` (message hooks only) — the engine's stable identity
      for the message, pairing each ``msg_sent`` with its
      ``msg_delivered``/``msg_withheld``.  **Observer-only**: the
      :class:`EventLog` deliberately drops it, so deterministic traces
      stay byte-identical; :class:`repro.obs.causal.CausalObserver`
      captures it.
    * ``extra`` — a JSON-ready mapping the :class:`EventLog` stores on
      :attr:`Event.extra` (and therefore serializes).  Only the live
      runtime's post-hoc replay supplies it; live traces are outside
      the byte-parity oracles.
    """

    __slots__ = ()

    def round_start(self, round_index: int, alive: Sequence[int]) -> None:
        """Round ``round_index`` begins with ``alive`` processes."""

    def msg_sent(
        self,
        sender: int,
        recipient: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """A message from ``sender`` to ``recipient`` reached the network."""

    def msg_withheld(
        self,
        sender: int,
        recipient: int,
        round_index: int,
        *,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """A sent message was withheld this round (RWS pending)."""

    def msg_delivered(
        self,
        sender: int,
        recipient: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """A message from ``sender`` was received by ``recipient``."""

    def crash(
        self,
        pid: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        applies_transition: bool | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """Process ``pid`` crashed.

        For round-model crashes ``applies_transition`` records whether
        the process completed the round's transition before dying (the
        decide-then-crash move behind uniform agreement); step-model
        crashes leave it ``None``.  Recording it makes a trace a
        complete adversary description, which is what lets
        :mod:`repro.obs.replay` reconstruct the scenario exactly.
        """

    def suspect(
        self,
        pid: int,
        suspected: int,
        *,
        time: int | None = None,
        delay: int | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """``pid``'s detector module began suspecting ``suspected``.

        ``delay`` is the suspicion latency (onset minus crash time)
        when the caller knows it.
        """

    def decide(
        self,
        pid: int,
        value: Any,
        round_index: int | None = None,
        *,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """Process ``pid`` decided ``value``."""

    def halt(
        self,
        pid: int,
        round_index: int | None = None,
        *,
        extra: dict[str, Any] | None = None,
    ) -> None:
        """Process ``pid`` halted — it will never send again."""

    def scenario_rejected(self, problems: Sequence[str]) -> None:
        """Scenario validation rejected a scenario (not an event kind;
        surfaces only in metrics)."""


class EventLog(Observer):
    """An observer that records every event, exportable as JSONL.

    Args:
        clock: Timestamp source; defaults to :func:`time.perf_counter`.
            Inject a counter in tests for deterministic timestamps.
    """

    __slots__ = ("events", "_clock")

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.events: list[Event] = []
        self._clock = clock if clock is not None else time.perf_counter

    # -- recording hooks ----------------------------------------------------

    def round_start(self, round_index: int, alive: Sequence[int]) -> None:
        self.events.append(
            Event(
                kind="round_start",
                ts=self._clock(),
                round=round_index,
                value=sorted(alive),
            )
        )

    def msg_sent(
        self,
        sender: int,
        recipient: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.events.append(
            Event(
                kind="msg_sent",
                ts=self._clock(),
                round=round_index,
                time=time,
                pid=recipient,
                peer=sender,
                extra=extra,
            )
        )

    def msg_withheld(
        self,
        sender: int,
        recipient: int,
        round_index: int,
        *,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.events.append(
            Event(
                kind="msg_withheld",
                ts=self._clock(),
                round=round_index,
                pid=recipient,
                peer=sender,
                extra=extra,
            )
        )

    def msg_delivered(
        self,
        sender: int,
        recipient: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.events.append(
            Event(
                kind="msg_delivered",
                ts=self._clock(),
                round=round_index,
                time=time,
                pid=recipient,
                peer=sender,
                extra=extra,
            )
        )

    def crash(
        self,
        pid: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        applies_transition: bool | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.events.append(
            Event(
                kind="crash",
                ts=self._clock(),
                round=round_index,
                time=time,
                pid=pid,
                value=applies_transition,
                extra=extra,
            )
        )

    def suspect(
        self,
        pid: int,
        suspected: int,
        *,
        time: int | None = None,
        delay: int | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.events.append(
            Event(
                kind="suspect",
                ts=self._clock(),
                time=time,
                pid=pid,
                peer=suspected,
                value=delay,
                extra=extra,
            )
        )

    def decide(
        self,
        pid: int,
        value: Any,
        round_index: int | None = None,
        *,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.events.append(
            Event(
                kind="decide",
                ts=self._clock(),
                round=round_index,
                pid=pid,
                value=value,
                extra=extra,
            )
        )

    def halt(
        self,
        pid: int,
        round_index: int | None = None,
        *,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self.events.append(
            Event(
                kind="halt",
                ts=self._clock(),
                round=round_index,
                pid=pid,
                extra=extra,
            )
        )

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def kinds(self) -> list[str]:
        """The event kinds in record order (handy for sequence asserts)."""
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> list[Event]:
        return [event for event in self.events if event.kind == kind]

    # -- export -------------------------------------------------------------

    def jsonl_lines(self) -> Iterable[str]:
        for event in self.events:
            yield event.to_json()

    def dump_jsonl(self, fp: TextIO) -> int:
        """Write one JSON object per line; returns the event count."""
        for line in self.jsonl_lines():
            fp.write(line)
            fp.write("\n")
        return len(self.events)

    def write_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fp:
            return self.dump_jsonl(fp)


class CompositeObserver(Observer):
    """Fan one event stream out to several observers (log + metrics).

    Instrumentation must never take the run down, and one broken
    observer must not starve its siblings: every hook dispatch is
    isolated, exceptions are collected in :attr:`errors` as
    ``(observer, hook name, exception)`` triples, and the remaining
    observers still receive the event.  Callers that want loud failures
    can assert ``not composite.errors`` after the run.
    """

    __slots__ = ("observers", "errors")

    def __init__(self, *observers: Observer) -> None:
        self.observers = tuple(observers)
        self.errors: list[tuple[Observer, str, BaseException]] = []

    def _fanout(self, hook: str, *args: Any, **kwargs: Any) -> None:
        for obs in self.observers:
            try:
                getattr(obs, hook)(*args, **kwargs)
            except Exception as exc:
                self.errors.append((obs, hook, exc))

    def round_start(self, round_index: int, alive: Sequence[int]) -> None:
        self._fanout("round_start", round_index, alive)

    def msg_sent(
        self,
        sender: int,
        recipient: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self._fanout(
            "msg_sent",
            sender,
            recipient,
            round_index=round_index,
            time=time,
            msg_id=msg_id,
            extra=extra,
        )

    def msg_withheld(
        self,
        sender: int,
        recipient: int,
        round_index: int,
        *,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self._fanout(
            "msg_withheld",
            sender,
            recipient,
            round_index,
            msg_id=msg_id,
            extra=extra,
        )

    def msg_delivered(
        self,
        sender: int,
        recipient: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        msg_id: Any = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self._fanout(
            "msg_delivered",
            sender,
            recipient,
            round_index=round_index,
            time=time,
            msg_id=msg_id,
            extra=extra,
        )

    def crash(
        self,
        pid: int,
        *,
        round_index: int | None = None,
        time: int | None = None,
        applies_transition: bool | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self._fanout(
            "crash",
            pid,
            round_index=round_index,
            time=time,
            applies_transition=applies_transition,
            extra=extra,
        )

    def suspect(
        self,
        pid: int,
        suspected: int,
        *,
        time: int | None = None,
        delay: int | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self._fanout(
            "suspect", pid, suspected, time=time, delay=delay, extra=extra
        )

    def decide(
        self,
        pid: int,
        value: Any,
        round_index: int | None = None,
        *,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self._fanout("decide", pid, value, round_index, extra=extra)

    def halt(
        self,
        pid: int,
        round_index: int | None = None,
        *,
        extra: dict[str, Any] | None = None,
    ) -> None:
        self._fanout("halt", pid, round_index, extra=extra)

    def scenario_rejected(self, problems: Sequence[str]) -> None:
        self._fanout("scenario_rejected", problems)
