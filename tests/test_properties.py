"""Property-based tests (hypothesis) on core invariants.

These complement the exhaustive checks: hypothesis explores odd corners
of the *parameter* space (sizes, domains, adversary shapes) while the
exhaustive enumerations nail down specific (n, t) instances completely.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.consensus import FloodSet, FloodSetWS, check_uniform_consensus_run
from repro.failures import FailurePattern, PerfectDetector, classify_history
from repro.models.ss import SSScheduler, validate_ss_run
from repro.rounds import (
    RoundModel,
    check_round_synchrony,
    check_weak_round_synchrony,
    execute,
    random_scenario,
)
from repro.simulation.automaton import IdleAutomaton
from repro.simulation.executor import StepExecutor

# -- round-model invariants ---------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10**6),
    values=st.data(),
)
def test_floodsetws_uniform_agreement_random_rws(n, seed, values):
    """FloodSetWS never violates uniform consensus under any random
    admissible RWS adversary."""
    rng = random.Random(seed)
    vals = [values.draw(st.integers(0, 3)) for _ in range(n)]
    scenario = random_scenario(n, 1, max_round=2, allow_pending=True, rng=rng)
    run = execute(
        FloodSetWS(), vals, scenario, t=1, model=RoundModel.RWS, max_rounds=4
    )
    assert check_uniform_consensus_run(run) == []


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    t=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_rs_executor_satisfies_round_synchrony(n, t, seed):
    """Every RS execution satisfies the round synchrony property."""
    if t >= n:
        return
    rng = random.Random(seed)
    scenario = random_scenario(n, t, max_round=t + 1, allow_pending=False, rng=rng)
    values = [rng.randint(0, 2) for _ in range(n)]
    run = execute(
        FloodSet(), values, scenario, t=t, model=RoundModel.RS,
        max_rounds=t + 2,
    )
    assert check_round_synchrony(run) == []


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_rws_executor_satisfies_weak_round_synchrony(n, seed):
    """Every RWS execution satisfies weak round synchrony."""
    rng = random.Random(seed)
    scenario = random_scenario(n, 1, max_round=2, allow_pending=True, rng=rng)
    values = [rng.randint(0, 2) for _ in range(n)]
    run = execute(
        FloodSet(), values, scenario, t=1, model=RoundModel.RWS, max_rounds=3
    )
    assert check_weak_round_synchrony(run) == []


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_floodset_w_sets_grow_monotonically(n, seed):
    """A process's W set never loses values across rounds."""
    rng = random.Random(seed)
    scenario = random_scenario(n, 1, max_round=2, allow_pending=False, rng=rng)
    values = [rng.randint(0, 3) for _ in range(n)]
    algorithm = FloodSet()
    states = {
        pid: algorithm.initial_state(pid, n, 1, values[pid])
        for pid in range(n)
    }
    run = execute(
        algorithm, values, scenario, t=1, model=RoundModel.RS, max_rounds=3,
        run_all_rounds=True,
    )
    for pid in range(n):
        final = run.final_states[pid]
        assert states[pid].W <= final.W


# -- step-model invariants ----------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    phi=st.integers(min_value=1, max_value=3),
    delta=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10**6),
    crash_time=st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
)
def test_ss_scheduler_never_violates_bounds(phi, delta, seed, crash_time):
    """SSScheduler's runs always pass the independent SS validators."""
    crashes = {1: crash_time} if crash_time is not None else {}
    pattern = FailurePattern.with_crashes(3, crashes)
    executor = StepExecutor(
        IdleAutomaton(),
        3,
        pattern,
        SSScheduler(phi, delta, rng=random.Random(seed)),
    )
    run = executor.execute(80)
    assert validate_ss_run(run, phi, delta) == []


# -- detector invariants -------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    crash_times=st.dictionaries(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=60),
        max_size=2,
    ),
    max_delay=st.integers(min_value=0, max_value=30),
)
def test_perfect_detector_axioms_hold_for_any_delays(
    seed, crash_times, max_delay
):
    """P's histories satisfy strong completeness + strong accuracy for
    every crash pattern and every finite detection-delay assignment."""
    pattern = FailurePattern.with_crashes(4, crash_times)
    history = PerfectDetector(max_delay=max_delay).history(
        pattern, horizon=150, rng=random.Random(seed)
    )
    report = classify_history(history, pattern, 150)
    assert report.matches_class("P"), report.violations


# -- commit and broadcast invariants --------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    votes=st.tuples(st.booleans(), st.booleans(), st.booleans()),
)
def test_synchronous_commit_nbac_random_rs(seed, votes):
    """SynchronousCommit never violates NBAC under any random admissible
    RS adversary and any vote assignment."""
    from repro.commit import check_nbac_run
    from repro.commit.algorithms import SynchronousCommit

    rng = random.Random(seed)
    scenario = random_scenario(3, 1, max_round=2, allow_pending=False, rng=rng)
    run = execute(
        SynchronousCommit(), votes, scenario, t=1,
        model=RoundModel.RS, max_rounds=4,
    )
    assert check_nbac_run(run) == []


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    votes=st.tuples(st.booleans(), st.booleans(), st.booleans()),
)
def test_p_commit_nbac_random_rws(seed, votes):
    """PerfectFDCommit never violates NBAC under any random admissible
    RWS adversary (pending messages included)."""
    from repro.commit import check_nbac_run
    from repro.commit.algorithms import PerfectFDCommit

    rng = random.Random(seed)
    scenario = random_scenario(3, 1, max_round=2, allow_pending=True, rng=rng)
    run = execute(
        PerfectFDCommit(), votes, scenario, t=1,
        model=RoundModel.RWS, max_rounds=4,
    )
    assert check_nbac_run(run) == []


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_atomic_broadcast_ws_total_order_random_rws(seed):
    """AtomicBroadcastWS keeps integrity/total-order/validity under any
    random admissible RWS adversary."""
    from repro.broadcast import AtomicBroadcastWS, check_atomic_broadcast_run

    rng = random.Random(seed)
    scenario = random_scenario(3, 1, max_round=2, allow_pending=True, rng=rng)
    values = (("a0",), ("a1",), ("a2",))
    run = execute(
        AtomicBroadcastWS(), values, scenario, t=1,
        model=RoundModel.RWS, max_rounds=4,
    )
    assert check_atomic_broadcast_run(run) == []


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=2, max_value=4),
)
def test_latency_never_below_one(seed, n):
    """No algorithm can decide before its first transition: |r| >= 1 on
    every complete run."""
    from repro.consensus import FloodSetWS

    rng = random.Random(seed)
    scenario = random_scenario(n, 1, max_round=2, allow_pending=True, rng=rng)
    values = [rng.randint(0, 1) for _ in range(n)]
    run = execute(
        FloodSetWS(), values, scenario, t=1,
        model=RoundModel.RWS, max_rounds=4,
    )
    latency = run.latency()
    assert latency is None or latency >= 1


# -- batch cache-key invariants -------------------------------------------------
#
# The campaign fabric (repro serve) shards work on these keys and dedupes
# merged submissions by them, so two invariants are load-bearing: the
# fragment-spliced batch encoder must equal the per-request reference
# encoder exactly, and keys must be injective over canonical content.


def _request_strategy():
    from repro.runtime import ExecutionRequest

    value = st.one_of(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.booleans(),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=8),
    )

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=5))
        scenario = random_scenario(
            n,
            1,
            max_round=2,
            allow_pending=True,
            rng=random.Random(draw(st.integers(0, 10**6))),
        )
        return ExecutionRequest(
            name=draw(st.text(min_size=1, max_size=12)),
            engine=draw(st.sampled_from(["rounds", "vector"])),
            algorithm=draw(st.sampled_from(["floodset", "floodset-ws"])),
            values=tuple(draw(value) for _ in range(n)),
            t=1,
            model=draw(st.sampled_from(["RS", "RWS"])),
            scenario=scenario,
            max_rounds=draw(st.integers(min_value=1, max_value=6)),
            seed=draw(st.one_of(st.none(), st.integers(0, 2**62))),
            expect_disagreement=draw(st.booleans()),
            check_consensus=draw(st.booleans()),
        )

    return build()


@settings(max_examples=60, deadline=None)
@given(requests=st.lists(_request_strategy(), min_size=1, max_size=8))
def test_batch_cache_keys_equal_reference_encoder(requests):
    """The fragment-spliced batch encoder is exactly the per-cell
    ``cache_key()`` reference, for arbitrary value domains and knobs."""
    from repro.runtime.request import batch_cache_keys

    assert batch_cache_keys(requests) == [
        request.cache_key() for request in requests
    ]


@settings(max_examples=60, deadline=None)
@given(requests=st.lists(_request_strategy(), min_size=2, max_size=8))
def test_batch_cache_keys_injective_over_canonical_content(requests):
    """Equal keys imply equal canonical request content (and vice
    versa) — the dedupe-by-key merge in the serve coordinator is only
    sound if a key collision cannot span distinct cells."""
    from repro.runtime.request import batch_cache_keys

    keys = batch_cache_keys(requests)
    for i, a in enumerate(requests):
        for j, b in enumerate(requests):
            assert (keys[i] == keys[j]) == (a.to_dict() == b.to_dict())
