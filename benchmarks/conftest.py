"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment of DESIGN.md's index (the
paper has no numeric tables; its "figures" are algorithms and its
results are theorems and latency equalities, so each bench times the
mechanical reproduction and asserts the claim's shape).  Heavy
exhaustive sweeps use ``benchmark.pedantic`` with a single round;
kernel microbenchmarks use the default calibrated timing.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a heavyweight callable exactly once under timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
