"""Tests for the SS model: synchrony validators and the SS scheduler."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.failures import FailurePattern
from repro.models import (
    SSScheduler,
    SynchronousModel,
    check_message_synchrony,
    check_process_synchrony,
    validate_ss_run,
)
from repro.simulation import (
    RoundRobinScheduler,
    ScriptedScheduler,
    StepAutomaton,
    StepExecutor,
    StepOutcome,
)
from repro.simulation.automaton import IdleAutomaton


class AlwaysSendTo(StepAutomaton):
    """Sends a constant payload to a fixed recipient each step."""

    def __init__(self, recipient: int) -> None:
        self.recipient = recipient

    def initial_state(self, pid, n):
        return None

    def on_step(self, ctx):
        if ctx.pid == 0:
            return StepOutcome(state=None, send_to=self.recipient, payload="m")
        return StepOutcome(state=None)


def run_with(scheduler, n=3, crashes=None, steps=40, automaton=None):
    pattern = FailurePattern.with_crashes(n, crashes or {})
    executor = StepExecutor(
        automaton or IdleAutomaton(), n, pattern, scheduler
    )
    return executor.execute(steps)


class TestProcessSynchronyValidator:
    def test_round_robin_satisfies_phi_one(self):
        run = run_with(RoundRobinScheduler())
        assert check_process_synchrony(run, phi=1) == []

    def test_starvation_detected(self):
        # p0 takes 3 consecutive steps while p1 and p2 idle: violates Φ=2.
        script = [(0, "all")] * 3 + [(1, "all"), (2, "all")]
        run = run_with(ScriptedScheduler(script))
        assert check_process_synchrony(run, phi=2)

    def test_bound_is_tight(self):
        # Exactly Φ steps in a window is allowed; Φ+1 is not.
        script = [(0, "all")] * 2 + [(1, "all"), (2, "all")]
        run = run_with(ScriptedScheduler(script))
        assert check_process_synchrony(run, phi=2) == []
        assert check_process_synchrony(run, phi=1)

    def test_crashed_process_exempt(self):
        # p1 crashes at time 0; p0 may run alone forever w.r.t. p1 — but
        # p2 is still alive, so interleave p2 to keep ITS constraint.
        script = []
        for _ in range(5):
            script.extend([(0, "all"), (2, "all")])
        run = run_with(ScriptedScheduler(script), crashes={1: 0})
        assert check_process_synchrony(run, phi=1) == []

    def test_violation_before_crash_still_counts(self):
        # p1 crashes late (time 20); the starvation happens while alive.
        script = [(0, "all")] * 4 + [(1, "all"), (2, "all")]
        run = run_with(ScriptedScheduler(script), crashes={1: 20})
        assert check_process_synchrony(run, phi=2)


class TestMessageSynchronyValidator:
    def test_immediate_delivery_satisfies_any_delta(self):
        run = run_with(RoundRobinScheduler(), automaton=AlwaysSendTo(1))
        assert check_message_synchrony(run, delta=1) == []

    def test_withheld_message_detected(self):
        # p0 sends to p1 at step 0; p1 steps at 2 and 4 without delivery.
        script = [(0, "all"), (2, "all"), (1, []), (2, "all"), (1, [])]
        run = run_with(
            ScriptedScheduler(script), automaton=AlwaysSendTo(1)
        )
        assert check_message_synchrony(run, delta=2)

    def test_delivery_within_delta_ok(self):
        # sent at step 0; p1's first step at index 1 < 0+Δ for Δ=3 is an
        # early (allowed) delivery opportunity — deliver there.
        script = [(0, "all"), (1, "all"), (2, "all")]
        run = run_with(ScriptedScheduler(script), automaton=AlwaysSendTo(1))
        assert check_message_synchrony(run, delta=3) == []

    def test_no_constraint_without_late_recipient_steps(self):
        # Recipient never steps after the deadline: no violation possible.
        script = [(0, "all"), (1, []), (2, "all")]
        run = run_with(ScriptedScheduler(script), automaton=AlwaysSendTo(1))
        assert check_message_synchrony(run, delta=5) == []


class TestSSScheduler:
    @pytest.mark.parametrize("phi,delta", [(1, 1), (2, 3), (3, 2)])
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_runs_satisfy_both_bounds(self, phi, delta, seed):
        rng = random.Random(seed)
        crashes = {1: rng.randint(0, 30)} if seed % 2 else {}
        run = run_with(
            SSScheduler(phi, delta, rng=rng),
            crashes=crashes,
            steps=120,
            automaton=AlwaysSendTo(2),
        )
        assert validate_ss_run(run, phi, delta) == []

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            SSScheduler(0, 1)
        with pytest.raises(ConfigurationError):
            SSScheduler(1, 0)

    def test_every_alive_process_keeps_stepping(self):
        rng = random.Random(7)
        run = run_with(SSScheduler(2, 2, rng=rng), steps=90)
        counts = run.schedule.step_counts()
        assert all(count >= 90 // (3 * 3) for count in counts.values())

    def test_exercises_phi_slack(self):
        # With Φ=3 the scheduler should sometimes let a process step
        # several times in a row — otherwise it is not exploring the
        # adversarial freedom the model allows.
        rng = random.Random(11)
        run = run_with(SSScheduler(3, 1, rng=rng), steps=200)
        pids = [step.pid for step in run.schedule]
        repeats = sum(1 for a, b in zip(pids, pids[1:]) if a == b)
        assert repeats > 0


class TestSynchronousModel:
    def test_executor_roundtrip_validates(self):
        model = SynchronousModel(phi=2, delta=2)
        pattern = FailurePattern.with_crashes(3, {2: 15})
        run = model.executor(
            IdleAutomaton(), 3, pattern, rng=random.Random(1)
        ).execute(60)
        assert model.validate(run) == []

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            SynchronousModel(phi=0)

    def test_validate_flags_foreign_run(self):
        # A run from a starving scheduler fails the SS validator.
        script = [(0, "all")] * 6 + [(1, "all"), (2, "all")]
        run = run_with(ScriptedScheduler(script))
        model = SynchronousModel(phi=1, delta=1)
        assert model.validate(run)
