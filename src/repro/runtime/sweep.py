"""Deterministic, parallel execution of scenario spaces.

:class:`SweepRunner` takes a :class:`~repro.runtime.space.ScenarioSpace`
and produces a :class:`SweepResult` with the same bytes whether it ran
serially or across a ``multiprocessing`` pool, cold or cache-warm:

* every cell is executed under a per-cell logical-clock event log
  (timestamps restart at 1.0), so a cell's trace is independent of the
  worker that ran it;
* the merged sweep trace re-stamps events with one global logical
  clock *in space order* — the only order-dependent step happens in
  the parent, after all workers finished;
* metrics states are folded in space order (counters add, histogram
  samples extend), so aggregates match between ``jobs=1`` and
  ``jobs=N``;
* with a :class:`~repro.runtime.cache.ResultCache`, cells whose stable
  request hash is already on disk are served without executing — a
  repeated sweep executes zero scenarios.

With ``check=True`` the PR-2 trace oracle runs over every produced
trace: model invariants (detector axioms, round synchrony, ordering)
must hold everywhere; consensus violations must appear exactly on the
cells documented to disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Callable, Iterable

from repro.obs.check import check_events
from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler, get_profiler, profiled, set_profiler
from repro.runtime.cache import ResultCache
from repro.runtime.harness import execute_batch, execute_request
from repro.runtime.pool import parallel_map
from repro.runtime.request import ExecutionRequest, ExecutionResult
from repro.runtime.space import ScenarioSpace


def _execute_cell(request: ExecutionRequest) -> ExecutionResult:
    """Worker entry point: one cell, standard instrumentation.

    Beyond :func:`execute_request`, the sweep path times the cell and
    captures its engine spans under a worker-local profiler, attaching
    both as ``extra["profile"]`` — wall-clock telemetry for campaign
    summaries (slowest cells, per-engine span aggregates).  The figures
    ride in ``extra`` precisely because the determinism contract covers
    events and metrics, never extras: traces stay byte-identical across
    schedulers while the telemetry varies with the hardware.  Samples
    are also re-recorded into any profiler the caller had installed, so
    ``jobs=1`` runs under ``repro metrics``-style profiling see exactly
    the spans they always did.
    """
    outer = get_profiler()
    local = Profiler()
    set_profiler(local)
    started = perf_counter()
    try:
        result = execute_request(request)
    finally:
        set_profiler(outer)
    duration = perf_counter() - started
    if outer is not None:
        for name, samples in local.spans.items():
            for sample in samples:
                outer.record(name, sample)
    result.extra["profile"] = {
        "duration_s": duration,
        "spans": local.snapshot(),
    }
    return result


def _execute_chunk(requests: list[ExecutionRequest]) -> list[ExecutionResult]:
    """Worker entry point: one chunk of cells, batched where possible.

    Singleton non-vector chunks take the classic per-cell path
    (:func:`_execute_cell`, with its per-cell span snapshot); vector
    chunks run through :func:`~repro.runtime.harness.execute_batch` so
    the columnar kernel amortizes plan construction and trace templates
    across the whole chunk.  The batch is timed as a unit and the
    wall-clock share is split evenly across its cells — per-cell
    telemetry stays plausible while the determinism contract (events,
    metrics) is untouched by the batching.
    """
    if len(requests) == 1 and requests[0].engine != "vector":
        return [_execute_cell(requests[0])]
    outer = get_profiler()
    local = Profiler()
    set_profiler(local)
    started = perf_counter()
    try:
        batch = execute_batch(requests)
    finally:
        set_profiler(outer)
    duration = perf_counter() - started
    if outer is not None:
        for name, samples in local.spans.items():
            for sample in samples:
                outer.record(name, sample)
    share = duration / len(batch) if batch else 0.0
    spans = local.snapshot()
    for position, result in enumerate(batch):
        result.extra["profile"] = {
            "duration_s": share,
            "spans": spans if position == 0 else {},
        }
    return batch


def check_model_for(request: ExecutionRequest) -> str | None:
    """Which synchrony checker applies to a cell's trace.

    The rounds engine — and the vector engine, which runs the same
    RS/RWS semantics columnar — checks its own model.  The SS emulation's trace
    is step-level (no round-model synchrony claim to check, the
    deadline arithmetic is validated by its dedicated checker), so only
    the model-agnostic invariants run; the SP emulation lifts pending
    messages into ``msg_withheld`` events and must satisfy weak round
    synchrony.  The live engine's P-synchronizer likewise realizes RWS
    — sends a recipient never consumed become ``msg_withheld`` with the
    Lemma 4.1 crash bound (its step-mode traces carry no withheld
    events, so the checker is vacuous there).
    """
    if request.engine in ("rounds", "vector"):
        return request.model
    if request.engine in ("rws_on_sp", "live"):
        return "RWS"
    return None


@dataclass
class CellCheck:
    """The oracle's verdict on one cell's trace."""

    name: str
    ok: bool
    model_errors: list[str] = field(default_factory=list)
    consensus_violations: int = 0
    expected_disagreement: bool = False

    def describe(self) -> str:
        if self.ok:
            suffix = (
                f" (documented disagreement reproduced, "
                f"{self.consensus_violations} violation(s))"
                if self.expected_disagreement
                else ""
            )
            return f"{self.name}: ok{suffix}"
        lines = [f"{self.name}: FAIL"]
        lines.extend(f"  {problem}" for problem in self.model_errors)
        if self.expected_disagreement and not self.consensus_violations:
            lines.append("  expected disagreement did not appear")
        if not self.expected_disagreement and self.consensus_violations:
            lines.append(
                f"  {self.consensus_violations} unexpected consensus "
                "violation(s)"
            )
        return "\n".join(lines)


def check_cell(
    request: ExecutionRequest, result: ExecutionResult
) -> CellCheck:
    """Run the trace oracle over one cell's events."""
    initial_values = (
        request.values
        if request.engine in ("rounds", "live", "vector")
        and request.check_consensus
        else None
    )
    report = check_events(
        result.events,
        model=check_model_for(request),
        initial_values=initial_values,
    )
    model_errors = [
        violation.describe()
        for violation in report.errors
        if violation.checker != "consensus"
    ]
    consensus = sum(
        1 for violation in report.errors if violation.checker == "consensus"
    )
    ok = not model_errors
    if request.check_consensus:
        if request.expect_disagreement:
            ok = ok and consensus > 0
        else:
            ok = ok and consensus == 0
    return CellCheck(
        name=request.name,
        ok=ok,
        model_errors=model_errors,
        consensus_violations=consensus,
        expected_disagreement=request.expect_disagreement,
    )


@dataclass
class SweepResult:
    """Everything one sweep produced, in space order."""

    space_name: str
    requests: list[ExecutionRequest]
    results: list[ExecutionResult]
    executed: int
    cached: int
    metrics: MetricsRegistry
    checks: list[CellCheck] | None = None
    #: The backing cache's lifetime telemetry (hits/misses/stores/
    #: corrupt evictions), ``None`` when the sweep ran uncached.
    cache_stats: dict[str, int] | None = None

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def checks_ok(self) -> bool:
        """True when checking ran and every cell passed."""
        return self.checks is not None and all(c.ok for c in self.checks)

    def merged_events(self) -> list[Event]:
        """All cells' events, re-stamped with one global logical clock.

        Concatenation follows space order and timestamps are assigned
        after the fact, so the merged trace is byte-identical no matter
        how many workers executed the cells (or how many came from the
        cache).
        """
        merged: list[Event] = []
        tick = 0
        for result in self.results:
            for event in result.events:
                tick += 1
                merged.append(replace(event, ts=float(tick)))
        return merged

    def merged_jsonl_lines(self) -> Iterable[str]:
        for event in self.merged_events():
            yield event.to_json()

    def write_merged_jsonl(self, path: str) -> int:
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.merged_jsonl_lines():
                handle.write(line)
                handle.write("\n")
                count += 1
        return count

    def latency_by_algorithm(self) -> dict[str, tuple[int | None, int | None]]:
        """Per-algorithm ``(best, worst)`` decision latency over the space.

        Over a failure-free space this is the paper's ``(lat(A, C*),
        Λ(A))`` pair: ``Λ(A) = Lat(A, 0)`` is exactly the worst case
        over the failure-free runs.  ``None`` appears when some cell
        left a correct process undecided.
        """
        tally: dict[str, dict[str, Any]] = {}
        for request, result in zip(self.requests, self.results):
            entry = tally.setdefault(
                request.algorithm,
                {"best": None, "worst": 0, "incomplete": False},
            )
            if result.latency is None:
                entry["incomplete"] = True
            else:
                entry["best"] = (
                    result.latency
                    if entry["best"] is None
                    else min(entry["best"], result.latency)
                )
                entry["worst"] = max(entry["worst"], result.latency)
        return {
            name: (
                entry["best"],
                None if entry["incomplete"] else entry["worst"],
            )
            for name, entry in tally.items()
        }

    def describe(self) -> str:
        lines = [
            f"space '{self.space_name}': {self.total} scenarios; "
            f"executed {self.executed}, cached {self.cached}"
        ]
        if self.cache_stats is not None and self.cache_stats.get(
            "corrupt_evictions"
        ):
            lines.append(
                f"cache: evicted {self.cache_stats['corrupt_evictions']} "
                "corrupt entr(y/ies) — served as misses and re-executed"
            )
        if self.checks is not None:
            failed = [check for check in self.checks if not check.ok]
            lines.append(
                f"oracle: {self.total - len(failed)}/{self.total} cells clean"
            )
            lines.extend(check.describe() for check in failed)
        return "\n".join(lines)


class SweepRunner:
    """Execute a scenario space — serially or across a process pool.

    Args:
        jobs: Worker processes; ``1`` (default) runs in-process.
        cache: A :class:`ResultCache`, a cache directory path, or
            ``None`` to disable caching.
        check: Run the trace oracle over every cell's trace.
        on_cell: Called in the parent, in completion order, once per
            cell — ``on_cell(request, result)`` with ``result.cached``
            telling hits from fresh executions.  The campaign-telemetry
            seam: metrics.jsonl lines and progress heartbeats hang off
            it without the runner knowing about run directories.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ResultCache | str | None = None,
        check: bool = False,
        on_cell: Callable[[ExecutionRequest, ExecutionResult], None] | None = None,
    ) -> None:
        self.jobs = jobs
        self.cache = (
            ResultCache(cache)
            if isinstance(cache, str)
            else cache
        )
        self.check = check
        self.on_cell = on_cell

    def run(self, space: ScenarioSpace) -> SweepResult:
        requests = list(space.requests)
        results: list[ExecutionResult | None] = [None] * len(requests)

        with profiled("runtime.sweep"):
            # Cache phase: resolve hits in the parent so workers only
            # ever see genuine work.
            misses: list[int] = []
            if self.cache is not None:
                for index, request in enumerate(requests):
                    hit = self.cache.get(request)
                    if hit is not None:
                        results[index] = hit
                        if self.on_cell is not None:
                            self.on_cell(request, hit)
                    else:
                        misses.append(index)
            else:
                misses = list(range(len(requests)))

            # Execute phase: fan the misses out as chunks.  Vector-engine
            # cells coalesce into batch chunks (split across the workers)
            # so the columnar kernel amortizes plans and trace templates;
            # everything else stays a singleton chunk on the classic
            # per-cell path.  Each chunk's results are cached (and
            # reported) the moment they arrive, so a campaign killed
            # mid-sweep keeps every completed cell — that is what makes
            # run directories resumable.
            chunks: list[list[int]] = []
            vector_misses: list[int] = []
            for index in misses:
                if requests[index].engine == "vector":
                    vector_misses.append(index)
                else:
                    chunks.append([index])
            if vector_misses:
                size = -(-len(vector_misses) // max(1, self.jobs))
                chunks.extend(
                    vector_misses[start : start + size]
                    for start in range(0, len(vector_misses), size)
                )
            chunk_iter = iter(chunks)

            def _arrived(batch: list[ExecutionResult]) -> None:
                for index, result in zip(next(chunk_iter), batch):
                    results[index] = result
                    if self.cache is not None:
                        self.cache.put(requests[index], result)
                    if self.on_cell is not None:
                        self.on_cell(requests[index], result)

            with profiled("runtime.sweep.execute"):
                parallel_map(
                    _execute_chunk,
                    [
                        [requests[index] for index in chunk]
                        for chunk in chunks
                    ],
                    jobs=self.jobs,
                    on_result=_arrived,
                )

        final: list[ExecutionResult] = [r for r in results if r is not None]
        assert len(final) == len(requests)

        # Aggregate phase: fold metrics in space order so the result is
        # schedule-independent.
        registry = MetricsRegistry()
        for result in final:
            registry.merge_state(result.metrics)
        # Only schedule-independent facts may enter the aggregate:
        # executed/cached counts live on the SweepResult, not in the
        # registry, so a cache-warm re-run aggregates identically.
        registry.counter("sweep.cells.total").inc(len(final))

        checks = None
        if self.check:
            with profiled("runtime.sweep.check"):
                checks = [
                    check_cell(request, result)
                    for request, result in zip(requests, final)
                ]

        return SweepResult(
            space_name=space.name,
            requests=requests,
            results=final,
            executed=len(misses),
            cached=len(final) - len(misses),
            metrics=registry,
            checks=checks,
            cache_stats=(
                self.cache.stats.as_dict() if self.cache is not None else None
            ),
        )


def run_space(
    space: ScenarioSpace,
    *,
    jobs: int = 1,
    cache: ResultCache | str | None = None,
    check: bool = False,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs=jobs, cache=cache, check=check).run(space)
