"""Interactive consistency: agreeing on the whole input vector.

The historical ancestor of consensus (Pease–Shostak–Lamport), restricted
here to the crash model: every process must decide the *vector* of all
``n`` initial values, with ``None`` marking processes whose value never
reached anyone.  FloodSet's machinery carries over verbatim — flood
origin-tagged values for ``t + 1`` rounds, decide the accumulated table
— and so does its correctness argument (some round is crash-free, after
which all tables are equal).

Requirements checked by :func:`check_interactive_consistency_run`:

* **Uniform vector agreement** — no two deciders hold different
  vectors (components included);
* **Validity** — the component of every *correct* process is its true
  initial value, and every non-``None`` component is the true value of
  its owner (no invented values);
* **Termination** — all correct processes decide.

Consensus is recoverable from interactive consistency by any
deterministic rule over the vector (e.g. min over non-``None``
entries) — the reduction :func:`consensus_from_vector` implements it,
which is also how the test suite cross-checks this module against
FloodSet itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.consensus.spec import SpecViolation
from repro.rounds.algorithm import RoundAlgorithm, broadcast
from repro.rounds.executor import RoundRun


@dataclass(frozen=True)
class InteractiveState:
    """State: the known ``origin -> value`` table and the decision."""

    rounds: int
    table: Mapping[int, Any]
    halt: frozenset
    decision: Any  # the decided vector (tuple), or None
    n: int
    t: int


class InteractiveConsistency(RoundAlgorithm):
    """Vector consensus by origin-tagged flooding (RS)."""

    name = "InteractiveConsistency"

    #: Whether the FloodSetWS halt guard filters late senders (RWS use).
    use_halt = False

    def initial_state(
        self, pid: int, n: int, t: int, value: Any
    ) -> InteractiveState:
        return InteractiveState(
            rounds=0,
            table={pid: value},
            halt=frozenset(),
            decision=None,
            n=n,
            t=t,
        )

    def messages(self, pid: int, state: InteractiveState) -> Mapping[int, Any]:
        if state.rounds <= state.t:
            return broadcast(dict(state.table), state.n)
        return {}

    def transition(
        self, pid: int, state: InteractiveState, received: Mapping[int, Any]
    ) -> InteractiveState:
        rounds = state.rounds + 1
        table = dict(state.table)
        for sender, remote_table in received.items():
            if self.use_halt and sender in state.halt:
                continue
            table.update(remote_table)
        halt = state.halt
        if self.use_halt:
            halt = halt | frozenset(
                q for q in range(state.n) if q not in received
            )
        decision = state.decision
        if rounds == state.t + 1 and decision is None:
            decision = tuple(table.get(i) for i in range(state.n))
        return replace(
            state, rounds=rounds, table=table, halt=halt, decision=decision
        )

    def decision_of(self, state: InteractiveState) -> Any:
        return state.decision


class InteractiveConsistencyWS(InteractiveConsistency):
    """The RWS-safe variant: halt silences pending-message senders."""

    name = "InteractiveConsistencyWS"
    use_halt = True


def consensus_from_vector(vector: tuple) -> Any:
    """The classic reduction: consensus = min over known components."""
    known = [value for value in vector if value is not None]
    return min(known) if known else None


def check_interactive_consistency_run(run: RoundRun) -> list[SpecViolation]:
    """Check one finished run against the IC specification."""
    violations: list[SpecViolation] = []

    def flag(clause: str, detail: str) -> None:
        violations.append(
            SpecViolation(
                clause=clause,
                detail=detail,
                scenario=run.scenario.describe(),
                values=run.values,
            )
        )

    vectors = {pid: value for pid, (_, value) in run.decisions.items()}

    if len(set(vectors.values())) > 1:
        flag(
            "uniform vector agreement",
            "processes decided different vectors: "
            + ", ".join(
                f"p{pid}={vector!r}" for pid, vector in sorted(vectors.items())
            ),
        )

    for pid, vector in vectors.items():
        for origin in range(run.n):
            component = vector[origin]
            if origin in run.scenario.correct and component != run.values[origin]:
                flag(
                    "validity",
                    f"p{pid}'s component for correct p{origin} is "
                    f"{component!r}, expected {run.values[origin]!r}",
                )
            elif component is not None and component != run.values[origin]:
                flag(
                    "validity",
                    f"p{pid} invented {component!r} for p{origin}",
                )

    for pid in run.scenario.correct:
        if pid not in vectors:
            flag(
                "termination",
                f"correct p{pid} never decided within {run.num_rounds} rounds",
            )
    return violations
