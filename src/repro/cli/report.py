"""``repro report`` and ``repro top``: inspect campaign run directories.

``repro report RUNDIR`` renders the dashboard of a finished (or
interrupted) run directory written by ``repro sweep/fuzz/live
--run-dir``: coverage over the planned cells, resume and cache
counters, the span tree, SLO verdicts and the slowest cells.  With
``--json`` it emits the machine document (manifest + summary + last
progress heartbeat) instead, which CI validates.

``repro top RUNDIR`` tails a *running* campaign's ``progress.jsonl``
— one frame per heartbeat with ``--follow``, a single frame without.

Invoked with no run directory, ``repro report`` keeps its historical
meaning and regenerates ``EXPERIMENTS.md`` from live experiment runs
(the Makefile's ``make report``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cli import experiments as _experiments
from repro.obs.artifacts import RunDir
from repro.obs.progress import latest_progress
from repro.obs.report import (
    find_run_dir,
    render_report,
    render_top,
    report_json,
)


def _load_run(path: str) -> RunDir | None:
    try:
        return RunDir.load(find_run_dir(path))
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_report(args: argparse.Namespace) -> int:
    if args.rundir is None:
        # Legacy mode: regenerate EXPERIMENTS.md from live runs.
        return _experiments._cmd_report(args)
    run = _load_run(args.rundir)
    if run is None:
        return 2
    if args.json:
        print(json.dumps(report_json(run), indent=2, sort_keys=True))
    else:
        print(render_report(run, top=args.top))
    verdicts = (run.summary() or {}).get("slo_verdicts") or []
    failed = [v for v in verdicts if not v.get("ok")]
    return 1 if failed else 0


def _cmd_top(args: argparse.Namespace) -> int:
    run = _load_run(args.rundir)
    if run is None:
        return 2
    print(render_top(run))
    while args.follow:
        last = latest_progress(run.progress_records())
        status = (last or {}).get("status")
        if run.manifest.get("status") != "running" or status in (
            "complete",
            "interrupted",
        ):
            break
        time.sleep(args.interval)
        run = RunDir.load(run.path)
        print(render_top(run))
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Attach this module's subcommands to the root parser."""
    p_report = sub.add_parser(
        "report",
        help=(
            "dashboard over a campaign run directory "
            "(or regenerate EXPERIMENTS.md when no RUNDIR is given)"
        ),
    )
    p_report.add_argument(
        "rundir",
        nargs="?",
        help=(
            "a run directory (runs/<run_id>) or a runs root holding "
            "exactly one run; omit to regenerate EXPERIMENTS.md"
        ),
    )
    p_report.add_argument(
        "--json",
        action="store_true",
        help="emit the machine document (manifest + summary + progress)",
    )
    p_report.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="K",
        help="slowest cells to list (default: 5)",
    )
    # Legacy EXPERIMENTS.md flags, honoured only when RUNDIR is absent.
    p_report.add_argument("--output", default="EXPERIMENTS.md")
    p_report.add_argument("--full", action="store_true")
    p_report.set_defaults(func=_cmd_report)

    p_top = sub.add_parser(
        "top",
        help="tail a running campaign's progress heartbeats",
    )
    p_top.add_argument("rundir", help="the campaign's run directory")
    p_top.add_argument(
        "--follow",
        action="store_true",
        help="keep printing frames until the run completes",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between frames under --follow (default: 2)",
    )
    p_top.set_defaults(func=_cmd_top)
