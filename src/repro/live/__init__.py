"""The live asyncio cluster runtime (the paper's SP model, made real).

Every other engine in the repo runs in lock-step logical time, so the
SP model — an asynchronous system in which the perfect detector P must
be *implemented*, not assumed — is only ever axiomatized.  This package
runs each process as an asyncio task over an in-process transport with
pluggable fault injection (per-link latency, drops, partitions,
crash-at-time), builds P (and ◊P) from heartbeats and timeouts over
that transport, and adapts the existing round algorithms and the
Chandra–Toueg step automaton onto live channels:

* :mod:`repro.live.profiles` — named network fault profiles;
* :mod:`repro.live.transport` — queues, seeded drops/latency,
  partitions, retransmission-based reliable channels;
* :mod:`repro.live.detector`  — heartbeat timeout-P / ◊P with quality
  metrics (detection time, false suspicions);
* :mod:`repro.live.cluster`   — the cluster orchestrator: fault
  scheduling, event collection, logical-trace serialization, load mode;
* :mod:`repro.live.rounds`    — the P-synchronizer running
  :class:`~repro.rounds.algorithm.RoundAlgorithm` unmodified;
* :mod:`repro.live.steps`     — the step adapter driving
  :class:`~repro.simulation.automaton.StepAutomaton` (Chandra–Toueg);
* :mod:`repro.live.harness`   — ``ExecutionRequest`` glue for
  :func:`repro.runtime.harness.execute_request`.
"""

from repro.live.cluster import LiveCluster, LiveConfig, LiveRun
from repro.live.detector import DetectorConfig, HeartbeatService
from repro.live.harness import config_from_request, run_live_request
from repro.live.profiles import NET_PROFILES, NetProfile, profile_by_name
from repro.live.transport import LiveTransport, TransportStats

__all__ = [
    "DetectorConfig",
    "HeartbeatService",
    "LiveCluster",
    "LiveConfig",
    "LiveRun",
    "LiveTransport",
    "NET_PROFILES",
    "NetProfile",
    "TransportStats",
    "config_from_request",
    "profile_by_name",
    "run_live_request",
]
