"""Integration capstone: the full E1-E15 reproduction suite passes.

Each paper claim is one test so failures are attributable.  The quick
parameterisations are used; the benchmark suite runs the same functions
under timing.
"""

from __future__ import annotations

import pytest

from repro.core import EXPERIMENTS, run_experiment
from repro.core.experiments import ExperimentResult

FAST_IDS = [
    "E1", "E2", "E3", "E5", "E6", "E7", "E8", "E9",
    "E10", "E11", "E12", "E13", "E15",
]
SLOW_IDS = ["E4", "E14"]


@pytest.mark.parametrize("exp_id", FAST_IDS)
def test_fast_experiments_pass(exp_id):
    result = EXPERIMENTS[exp_id](True)
    assert result.ok, result.describe()


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", SLOW_IDS)
def test_slow_experiments_pass(exp_id):
    result = EXPERIMENTS[exp_id](True)
    assert result.ok, result.describe()


class TestRegistry:
    def test_all_fifteen_registered(self):
        assert sorted(EXPERIMENTS, key=lambda k: int(k[1:])) == [
            f"E{i}" for i in range(1, 16)
        ]

    def test_run_experiment_accepts_lowercase(self):
        result = run_experiment("e2")
        assert isinstance(result, ExperimentResult)
        assert result.exp_id == "E2"

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_describe_contains_claim_and_measurement(self):
        result = run_experiment("E2")
        text = result.describe()
        assert "paper:" in text and "measured:" in text


class TestResultShapes:
    """Spot-check the measured numbers, not just the pass bits."""

    def test_e6_lat_values(self):
        result = run_experiment("E6")
        assert "lat RS=1" in result.measured
        assert "lat RWS=1" in result.measured

    def test_e8_lambda(self):
        result = run_experiment("E8")
        assert "Λ=1" in result.measured

    def test_e10_lambdas_at_least_two(self):
        result = run_experiment("E10")
        assert "all >= 2: True" in result.measured

    def test_e15_table_rendered(self):
        result = run_experiment("E15")
        table = "\n".join(result.details)
        assert "A1" in table and "RWS" in table
