"""Indistinguishability of runs — the engine behind Theorem 3.1.

Two runs are indistinguishable to a process when it makes the same
observations in both: the same sequence of (received payloads,
failure-detector values) at its steps.  A deterministic automaton must
then behave identically — the cornerstone of essentially every
impossibility proof in this literature, and of the paper's Theorem 3.1
in particular, whose four runs are pairwise indistinguishable to the
receiver.

This module makes the notion first-class so proofs-by-indistinguish-
ability can be *checked* rather than trusted: the SDD refuter asserts
equal decisions; these helpers assert the stronger structural fact the
argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.simulation.run import Run


@dataclass(frozen=True)
class Observation:
    """What a process observes in one of its steps."""

    payloads: tuple[Any, ...]
    suspects: frozenset[int] | None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Obs(payloads={self.payloads!r}, suspects={self.suspects!r})"


def observations(run: Run, pid: int) -> list[Observation]:
    """The observation sequence of ``pid`` in ``run``.

    Payload order within a step follows delivery order (deterministic
    in the kernel); sender identities are visible through payloads only
    if the algorithm put them there, matching the model where a process
    sees message contents, not channel metadata.
    """
    sequence: list[Observation] = []
    for step in run.schedule:
        if step.pid != pid:
            continue
        payloads = tuple(
            run.messages[uid].payload for uid in step.received_uids
        )
        sequence.append(
            Observation(payloads=payloads, suspects=step.suspects)
        )
    return sequence


def indistinguishable(run_a: Run, run_b: Run, pid: int) -> bool:
    """True iff ``pid`` observes the same sequence in both runs.

    Compares up to the length of the shorter observation sequence when
    one run is a decided-and-stopped prefix of the other — the paper's
    "indistinguishable until p_j decides".
    """
    a = observations(run_a, pid)
    b = observations(run_b, pid)
    shorter = min(len(a), len(b))
    return a[:shorter] == b[:shorter]


def first_divergence(
    run_a: Run, run_b: Run, pid: int
) -> tuple[int, Observation | None, Observation | None] | None:
    """Locate where ``pid``'s observations split, or ``None`` if never.

    Returns ``(index, obs_a, obs_b)`` for the first differing local
    step; an observation is ``None`` when one sequence already ended.
    """
    a = observations(run_a, pid)
    b = observations(run_b, pid)
    for index in range(min(len(a), len(b))):
        if a[index] != b[index]:
            return index, a[index], b[index]
    return None
