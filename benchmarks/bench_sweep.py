"""Sweep runtime — the unified runner over the oracle-sweep space.

Times the cold serial sweep, a pool-backed sweep, and the cache-warm
re-run (which must execute zero scenarios).  The profiler breakdown
(``runtime.sweep``, ``runtime.sweep.execute``, ``runtime.sweep.check``)
lands in ``benchmarks/metrics.jsonl`` alongside the engine spans.

``bench_sweep_with_run_dir`` bounds the telemetry overhead: the full
artifact pipeline (manifest, per-cell metrics lines, progress
heartbeats, summary + SLO verdicts) rides the same sweep, so its cost
relative to ``bench_sweep_serial_cold`` is the price of a run
directory.

``bench_sweep_causal_analysis`` bounds the causal layer's overhead:
happens-before reconstruction plus critical-path extraction over every
cell of the already-executed sweep, so the ``obs.causal.annotate`` /
``obs.causal.critical`` spans land in ``metrics.jsonl`` next to the
execution spans they would tax.
"""

from repro.obs.artifacts import RunDir, identity_for_requests
from repro.obs.causal import annotate
from repro.obs.critical import critical_paths, verify_round_paths
from repro.obs.progress import ProgressReporter
from repro.obs.report import summarize_sweep, summary_problems
from repro.runtime import ResultCache, SweepRunner, oracle_sweep_space


def bench_sweep_serial_cold(once):
    space = oracle_sweep_space(count=5)
    result = once(SweepRunner(jobs=1).run, space)
    assert result.executed == result.total
    assert result.cached == 0


def bench_sweep_parallel(once):
    space = oracle_sweep_space(count=5)
    result = once(SweepRunner(jobs=2).run, space)
    assert result.executed == result.total


def bench_sweep_cache_warm(once, tmp_path):
    space = oracle_sweep_space(count=5)
    cache_dir = str(tmp_path / "sweep-cache")
    SweepRunner(jobs=1, cache=cache_dir).run(space)  # populate
    result = once(SweepRunner(jobs=1, cache=cache_dir).run, space)
    assert result.executed == 0
    assert result.cached == result.total


def bench_sweep_checked(once):
    space = oracle_sweep_space(count=5)
    result = once(SweepRunner(jobs=1, check=True).run, space)
    assert result.checks_ok, result.describe()


def bench_sweep_causal_analysis(once):
    space = oracle_sweep_space(count=5)
    sweep = SweepRunner(jobs=1).run(space)
    traced = [result for result in sweep.results if result.events]

    def analyze_all():
        anomalies = 0
        decisions = 0
        for result in traced:
            graph = annotate(result.events)
            decisions += len(critical_paths(result.events, graph=graph))
            anomalies += len(verify_round_paths(result.events, graph=graph))
        return decisions, anomalies

    decisions, anomalies = once(analyze_all)
    assert decisions > 0
    assert anomalies == 0


def bench_sweep_with_run_dir(once, tmp_path):
    space = oracle_sweep_space(count=5)
    requests = space.requests

    def instrumented_sweep():
        run = RunDir.open(
            tmp_path / "runs",
            kind="sweep",
            name=space.name,
            identity=identity_for_requests(requests),
            cells=[(r.name, r.cache_key()) for r in requests],
        )
        reporter = ProgressReporter(
            total=len(requests), path=run.progress_path, interval_s=60.0
        ).start()

        def on_cell(request, result):
            profile = result.extra.get("profile") or {}
            run.record_cell(
                name=request.name,
                key=result.request_key,
                cached=result.cached,
                engine=request.engine,
                duration_s=profile.get("duration_s"),
            )
            reporter.advance(cached=result.cached)

        sweep = SweepRunner(
            jobs=1, cache=ResultCache(run.results_dir), on_cell=on_cell
        ).run(space)
        run.finalize(summarize_sweep(run, sweep, completed_before=set()))
        reporter.stop()
        return run, sweep

    run, sweep = once(instrumented_sweep)
    assert sweep.executed == sweep.total
    assert summary_problems(run.summary()) == []
