"""Canonical per-round configurations and their content-addressed keys.

A :class:`Configuration` is the model checker's notion of "where a run
is after ``round`` completed rounds": the per-process algorithm states
(``None`` for crashed processes), the set of values any process has
*ever* decided (crashed deciders included — uniform agreement is about
them), the set of initial values (validity is about them), and the
outstanding weak-round-synchrony obligations (a process that withheld a
message towards a live recipient owes the adversary a crash in the next
round).

Two runs whose configurations coincide have identical futures — the
algorithms are deterministic and the adversary's remaining choices
depend only on who is alive, the crash budget, and the obligations —
so the breadth-first frontier prunes revisits by the configuration's
*canonical key*: the states are serialized into a canonical JSON form
(frozen dataclasses become ``["dc", name, fields]`` nodes, frozensets
are sorted) and hashed, giving a content-addressed identity that is
independent of construction order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any


def encode_value(value: Any) -> Any:
    """Encode ``value`` into a canonical JSON-ready structure.

    Handles the vocabulary algorithm states are built from: JSON
    primitives, tuples/lists, dicts, frozensets (sorted by their
    members' canonical serialization, so iteration order never leaks
    into the key) and frozen dataclasses (tagged with the class name —
    two different state types never collide).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (frozenset, set)):
        members = [encode_value(member) for member in value]
        members.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return ["set", members]
    if isinstance(value, (tuple, list)):
        return ["seq", [encode_value(member) for member in value]]
    if isinstance(value, dict):
        pairs = [
            [encode_value(key), encode_value(member)]
            for key, member in value.items()
        ]
        pairs.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return ["map", pairs]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [
            "dc",
            type(value).__name__,
            [
                [field.name, encode_value(getattr(value, field.name))]
                for field in dataclasses.fields(value)
            ],
        ]
    raise TypeError(
        f"cannot canonically encode {type(value).__name__!r} "
        "(states must be frozen dataclasses over JSON-able fields)"
    )


def value_sort_key(value: Any) -> str:
    """A total order over encodable values (used to sort value sets)."""
    return json.dumps(encode_value(value), sort_keys=True)


@dataclass(frozen=True)
class Configuration:
    """One reachable point of the bounded exploration.

    Attributes:
        round: Number of completed rounds (0 = initial configuration).
        states: Per-pid algorithm state, ``None`` once crashed.
        decided: Every value decided so far by *any* process, crashed
            deciders included, sorted canonically (uniform agreement
            quantifies over these).
        initial_values: The distinct initial values of the run, sorted
            canonically (validity quantifies over these).
        obligations: Sorted ``(pid, deadline_round)`` pairs — ``pid``
            withheld a message towards a live recipient and must crash
            in ``deadline_round`` without applying its transition
            (weak round synchrony, paper Section 4.2).
    """

    round: int
    states: tuple
    decided: tuple
    initial_values: tuple
    obligations: tuple

    @property
    def n(self) -> int:
        return len(self.states)

    @property
    def crashed(self) -> frozenset[int]:
        return frozenset(
            pid for pid, state in enumerate(self.states) if state is None
        )

    @property
    def alive(self) -> tuple[int, ...]:
        return tuple(
            pid for pid, state in enumerate(self.states) if state is not None
        )


def canonical_form(config: Configuration) -> str:
    """The configuration's canonical JSON serialization."""
    return json.dumps(
        {
            "round": config.round,
            "states": encode_value(config.states),
            "decided": encode_value(config.decided),
            "initial_values": encode_value(config.initial_values),
            "obligations": encode_value(config.obligations),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def canonical_key(config: Configuration) -> str:
    """Content-addressed identity: sha256 of the canonical form."""
    return hashlib.sha256(canonical_form(config).encode("utf-8")).hexdigest()
