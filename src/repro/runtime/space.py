"""Canonical enumeration of scenario spaces.

The paper's quantitative statements — ``lat``/``Lat``/``Λ`` and the
Theorem 5.2 gap — quantify over *sets of runs*.  A
:class:`ScenarioSpace` reifies such a set as an ordered tuple of
:class:`~repro.runtime.request.ExecutionRequest` cells, built three
ways:

* **explicit lists** — any caller-assembled requests;
* **workload aliases** — the named scenarios of
  :mod:`repro.workloads.scenarios` (plus the step-model emulation
  cells), via :data:`SCENARIO_BUILDERS` and the registered spaces;
* **seeded random streams** — ``random_scenario`` draws where every
  cell gets a *derived* seed (a stable hash of the stream seed and the
  cell index), so a stream is reproducible cell-by-cell and
  independent of how cells are distributed over workers.

Registered spaces (:func:`space_by_name`):

* ``oracle-sweep`` — the chaos sweep behind ``tests/test_oracle_sweep``:
  every named workload, randomized adversaries in both round models,
  and both emulations.
* ``e10-lambda`` — the E10 Λ sweep: every failure-free run (all binary
  initial configurations) of the safe RWS algorithms and of A1 in RS;
  the per-algorithm worst case over this space *is* ``Λ = Lat(A, 0)``.
* ``live-smoke`` — the asyncio runtime's smoke matrix: FloodSet over
  every net profile with one crash, a failure-free WS cell, and
  Chandra–Toueg with its first coordinator crashed.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.failures.pattern import FailurePattern
from repro.rounds.enumeration import all_value_assignments, random_scenario
from repro.rounds.scenario import FailureScenario
from repro.runtime.request import ExecutionRequest
from repro.workloads import (
    a1_rws_disagreement,
    adversarial_split,
    crash_mid_broadcast,
    decide_then_crash_pending,
    failure_free,
    floodset_rws_violation,
    initially_dead_t,
    unanimous,
)

#: The workload scenario aliases a space (or CLI flag) may name,
#: mirroring :mod:`repro.workloads.scenarios`.  Each builder takes
#: ``n`` and returns a :class:`FailureScenario`.
SCENARIO_BUILDERS: dict[str, Callable[[int], FailureScenario]] = {
    "failure-free": failure_free,
    "initially-dead-t": lambda n: initially_dead_t(n, 1),
    "crash-mid-broadcast": crash_mid_broadcast,
    "decide-then-crash": decide_then_crash_pending,
    "floodset-rws-violation": floodset_rws_violation,
    "a1-rws-disagreement": a1_rws_disagreement,
}


def derived_seed(base: int, index: int) -> int:
    """A deterministic per-cell seed from a stream seed and cell index.

    Stable across Python versions and processes (unlike ``hash``), so
    random streams shard over a pool without any seed bookkeeping.
    """
    digest = hashlib.sha256(f"{base}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ScenarioSpace:
    """An ordered, immutable set of execution cells.

    Order is semantic: merged sweep traces and aggregated metrics
    follow space order, which is what makes parallel execution
    byte-compatible with serial execution.
    """

    name: str
    requests: tuple[ExecutionRequest, ...]

    def __post_init__(self) -> None:
        names = [request.name for request in self.requests]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ConfigurationError(
                f"space {self.name!r} has duplicate cell names: "
                f"{sorted(duplicates)}"
            )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[ExecutionRequest]:
        return iter(self.requests)

    # -- builders -------------------------------------------------------------

    @classmethod
    def explicit(
        cls, name: str, requests: Sequence[ExecutionRequest]
    ) -> "ScenarioSpace":
        return cls(name=name, requests=tuple(requests))

    @classmethod
    def random_rounds(
        cls,
        name: str,
        *,
        algorithm: str,
        model: str,
        n: int,
        t: int = 1,
        count: int = 25,
        seed: int = 42,
        max_round: int = 3,
        max_rounds: int = 4,
        check_consensus: bool = False,
    ) -> "ScenarioSpace":
        """A seeded stream of ``count`` randomized round-model cells.

        Cell ``i`` draws its scenario from ``random_scenario`` seeded
        with ``derived_seed(seed, i)`` — the stream's content depends
        only on ``(seed, count)``, never on execution order.  Randomized
        adversaries can legitimately break consensus for non-WS
        algorithms in RWS, so consensus checking is off by default and
        only the model invariants are enforced.
        """
        requests = []
        for index in range(count):
            rng = random.Random(derived_seed(seed, index))
            scenario = random_scenario(
                n,
                t,
                max_round=max_round,
                allow_pending=(model == "RWS"),
                rng=rng,
            )
            requests.append(
                ExecutionRequest(
                    name=f"{name}-{index:03d}",
                    engine="rounds",
                    algorithm=algorithm,
                    values=adversarial_split(n),
                    t=t,
                    model=model,
                    scenario=scenario,
                    max_rounds=max_rounds,
                    check_consensus=check_consensus,
                )
            )
        return cls(name=name, requests=tuple(requests))


# ---------------------------------------------------------------------------
# Registered spaces
# ---------------------------------------------------------------------------


def _workload_cells() -> list[ExecutionRequest]:
    """The named workload matrix (one cell per oracle-sweep workload)."""
    n = 3
    split = adversarial_split(n)
    cells = [
        ("failure-free-rs", "floodset", split, failure_free(n), "RS", False),
        ("failure-free-rws", "floodset", split, failure_free(n), "RWS", False),
        ("initially-dead", "f-opt", split, initially_dead_t(n, 1), "RS", False),
        ("mid-broadcast-rs", "floodset", split, crash_mid_broadcast(n), "RS", False),
        ("mid-broadcast-copt", "c-opt", unanimous(n), crash_mid_broadcast(n), "RS", False),
        ("floodset-rws", "floodset", split, floodset_rws_violation(n), "RWS", True),
        ("a1-rws", "a1", split, a1_rws_disagreement(n), "RWS", True),
        # FloodSetWS *repairs* the decide-then-crash run: the oracle
        # must not require a disagreement, only tolerate one (the cell
        # exercises the adversary move, not a documented violation).
        ("decide-then-crash", "floodset-ws", split, decide_then_crash_pending(n), "RWS", False),
    ]
    return [
        ExecutionRequest(
            name=name,
            engine="rounds",
            algorithm=algorithm,
            values=values,
            t=1,
            model=model,
            scenario=scenario,
            max_rounds=4,
            expect_disagreement=requires_disagreement,
            check_consensus=(
                requires_disagreement or name != "decide-then-crash"
            ),
        )
        for name, algorithm, values, scenario, model, requires_disagreement in cells
    ]


def _emulation_cells() -> list[ExecutionRequest]:
    """One cell per step-kernel emulation, seeds as in the oracle sweep."""
    n = 3
    return [
        ExecutionRequest(
            name="emulation-rs-on-ss",
            engine="rs_on_ss",
            algorithm="floodset",
            values=adversarial_split(n),
            t=1,
            pattern=FailurePattern.with_crashes(n, {0: 7}),
            max_rounds=3,
            seed=3,
            check_consensus=False,
        ),
        ExecutionRequest(
            name="emulation-rws-on-sp",
            engine="rws_on_sp",
            algorithm="floodset",
            values=adversarial_split(n),
            t=1,
            pattern=FailurePattern.with_crashes(n, {0: 5}),
            max_rounds=2,
            seed=11,
            params=(
                ("max_detection_delay", 2),
                ("delivery_prob", 0.15),
                ("max_age", 80),
            ),
            check_consensus=False,
        ),
    ]


def oracle_sweep_space(count: int = 10, seed: int = 42) -> ScenarioSpace:
    """The chaos sweep: workloads + random adversaries + emulations."""
    requests = list(_workload_cells())
    for model, stream_seed in (("RS", seed), ("RWS", seed + 1)):
        stream = ScenarioSpace.random_rounds(
            f"random-{model.lower()}",
            algorithm="floodset",
            model=model,
            n=4,
            count=count,
            seed=stream_seed,
            max_rounds=4,
        )
        requests.extend(stream.requests)
    requests.extend(_emulation_cells())
    return ScenarioSpace(name="oracle-sweep", requests=tuple(requests))


def e10_lambda_space() -> ScenarioSpace:
    """The E10 Λ sweep: all failure-free runs of the safe algorithms.

    ``Λ(A) = Lat(A, 0)`` is the worst-case latency over failure-free
    runs, quantified over every initial configuration.  This space is
    exactly that run set for the three safe RWS algorithms (where the
    paper proves ``Λ >= 2``) and for A1 in RS (where ``Λ = 1``).
    """
    n = 3
    cells: list[ExecutionRequest] = []
    algorithms = (
        ("floodset-ws", "RWS"),
        ("c-opt-ws", "RWS"),
        ("f-opt-ws", "RWS"),
        ("a1", "RS"),
    )
    for algorithm, model in algorithms:
        for values in all_value_assignments(n):
            tag = "".join(str(v) for v in values)
            cells.append(
                ExecutionRequest(
                    name=f"{algorithm}-{model.lower()}-ff-{tag}",
                    engine="rounds",
                    algorithm=algorithm,
                    values=values,
                    t=1,
                    model=model,
                    scenario=failure_free(n),
                    max_rounds=4,
                )
            )
    return ScenarioSpace(name="e10-lambda", requests=tuple(cells))


def live_smoke_space(seed: int = 42) -> ScenarioSpace:
    """The live-engine smoke matrix: every net profile, one crash each.

    Small clusters on the asyncio runtime — FloodSet through the
    P-synchronizer over all three registered profiles (including the
    adversarial one with a partition window), one failure-free WS cell,
    and Chandra–Toueg with its first coordinator crashed.  Crash times
    are wall clock (pattern units of 10 ms); every cell's serialized
    trace must pass the full oracle suite, consensus included.
    """
    n = 4
    split = adversarial_split(n)
    cells = [
        # lan crashes at time 0 (the run would outrun a later fault);
        # the slower profiles crash mid-run at 30 ms.
        ExecutionRequest(
            name=f"live-floodset-{profile}",
            engine="live",
            algorithm="floodset",
            values=split,
            t=1,
            pattern=FailurePattern.with_crashes(
                n, {1: 0 if profile == "lan" else 3}
            ),
            max_rounds=4,
            seed=derived_seed(seed, index),
            params=(("net_profile", profile),),
        )
        for index, profile in enumerate(("lan", "lossy", "adversarial"))
    ]
    cells.append(
        ExecutionRequest(
            name="live-floodset-ws-lossy-ff",
            engine="live",
            algorithm="floodset-ws",
            values=split,
            t=1,
            pattern=FailurePattern.crash_free(n),
            max_rounds=4,
            seed=derived_seed(seed, 3),
            params=(("net_profile", "lossy"),),
        )
    )
    cells.append(
        ExecutionRequest(
            name="live-chandra-toueg-lan",
            engine="live",
            algorithm="chandra-toueg",
            values=(5, 7, 7),
            t=1,
            pattern=FailurePattern.with_crashes(3, {0: 0}),
            max_rounds=4,
            seed=derived_seed(seed, 4),
            params=(("net_profile", "lan"),),
        )
    )
    return ScenarioSpace(name="live-smoke", requests=tuple(cells))


def random_space(
    model: str, count: int = 25, seed: int = 42
) -> ScenarioSpace:
    """A pure random-adversary stream in one round model."""
    return ScenarioSpace.random_rounds(
        f"random-{model.lower()}",
        algorithm="floodset",
        model=model,
        n=4,
        count=count,
        seed=seed,
    )


def vectorized_space(space: ScenarioSpace) -> ScenarioSpace:
    """The same space with every rounds cell retargeted at the vector engine.

    Emulation and live cells pass through untouched.  Cell names are
    preserved — the engine field is part of every cache key, so the
    rewritten cells cache separately from their object-engine twins
    while the merged traces stay byte-identical.
    """
    return ScenarioSpace(
        name=space.name,
        requests=tuple(
            replace(request, engine="vector")
            if request.engine == "rounds"
            else request
            for request in space.requests
        ),
    )


#: Name → factory taking ``(count, seed)`` keyword arguments where the
#: space is stream-based; fixed spaces ignore them.
SPACE_FACTORIES: dict[str, Callable[..., ScenarioSpace]] = {
    "oracle-sweep": lambda count=10, seed=42: oracle_sweep_space(count, seed),
    "e10-lambda": lambda count=10, seed=42: e10_lambda_space(),
    "random-rs": lambda count=25, seed=42: random_space("RS", count, seed),
    "random-rws": lambda count=25, seed=42: random_space("RWS", count, seed),
    "live-smoke": lambda count=10, seed=42: live_smoke_space(seed),
}


def space_by_name(
    name: str, *, count: int | None = None, seed: int | None = None
) -> ScenarioSpace:
    """Build a registered space; unknown names raise with the catalogue."""
    factory = SPACE_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario space {name!r}; choose from "
            f"{sorted(SPACE_FACTORIES)}"
        )
    kwargs = {}
    if count is not None:
        kwargs["count"] = count
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)
