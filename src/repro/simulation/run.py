"""Run records: the tuple ⟨F, C0, S, T⟩ of the paper, finitely truncated.

A :class:`Run` bundles the failure pattern, the initial configuration,
the executed schedule prefix, and (in detector models) the history that
was queried.  Validators and problem specifications consume runs; they
never need the executor that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.failures.history import FailureDetectorHistory
from repro.failures.pattern import FailurePattern
from repro.simulation.message import Message
from repro.simulation.schedule import Schedule


@dataclass
class Run:
    """A finite prefix of a run of some algorithm.

    Attributes:
        n: Number of processes.
        pattern: The failure pattern ``F``.
        schedule: The executed step sequence ``S`` (with times ``T``
            embedded: ``time == index``).
        initial_states: The initial configuration ``C0`` (buffers start
            empty by definition).
        final_states: Process states after the last executed step.
        messages: Every message ever sent, by uid.
        undelivered: Per-process messages still buffered at the end.
        history: The failure-detector history used, or ``None``.
        state_snapshots: Optional per-step state of the stepping
            process *after* its step (recorded when the executor is
            asked to; index-aligned with ``schedule.steps``).
    """

    n: int
    pattern: FailurePattern
    schedule: Schedule
    initial_states: dict[int, Any]
    final_states: dict[int, Any]
    messages: dict[int, Message] = field(default_factory=dict)
    undelivered: dict[int, tuple[Message, ...]] = field(default_factory=dict)
    history: FailureDetectorHistory | None = None
    state_snapshots: list[Any] | None = None

    def __len__(self) -> int:
        return len(self.schedule)

    def steps_of(self, pid: int) -> list:
        """Return ``S_i``, the projection of the schedule on ``pid``."""
        return self.schedule.projection(pid)

    def messages_sent_by(self, pid: int) -> list[Message]:
        return [m for m in self.messages.values() if m.sender == pid]

    def messages_received_by(self, pid: int) -> list[Message]:
        received: list[Message] = []
        for step in self.schedule:
            if step.pid != pid:
                continue
            received.extend(self.messages[uid] for uid in step.received_uids)
        return received

    def undelivered_to_correct(self) -> list[Message]:
        """Messages addressed to correct processes but never delivered.

        On an *admissible* infinite run this list would be empty; on a
        finite prefix a non-empty list flags that the horizon may have
        been too short (or the scheduler inadmissible).
        """
        return [
            m
            for pid, pending in self.undelivered.items()
            if pid in self.pattern.correct
            for m in pending
        ]

    def state_of(self, pid: int) -> Any:
        return self.final_states[pid]
