#!/usr/bin/env python
"""Roll ``benchmarks/metrics.jsonl`` into a committed summary report.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [-o BENCH_PR10.json] [METRICS.jsonl]

Reads the per-span profiler breakdown the benchmark suite emits (one
JSON object per span: count/total/mean/max/p95, newer runs also carry
p50) and writes a stable, committed summary keyed by span name with
per-span ``count``, ``mean_s``, ``p50_s`` and ``p95_s``.  Older
metrics files without ``p50_s`` are accepted (the field is reported as
``null``), so the report can be regenerated from any run's output.

Also accepts a campaign *run directory* (or its ``metrics.jsonl``):
the per-cell and progress audit records interleaved there are skipped
rather than fatal, and a run that has not finalized yet (no
``summary.json``) yields a partial report flagged ``in_progress`` —
an overnight campaign must be reportable while it is still running.

The report also carries a cross-PR ``trajectory`` section: every
committed ``BENCH_*.json`` snapshot in the repo root is merged, and
each span seen by at least two snapshots gets its ``mean_s`` series in
snapshot order — the per-span performance history across the PR
sequence, so regressions show up as a step in the series rather than
by diffing snapshot files.  ``--no-trajectory`` skips it.  The scan
always covers the *repo root*, wherever ``-o`` points: the committed
snapshots live there, and scanning the output's own directory used to
render the trajectory empty for any out-of-tree output path.

Exits 0 on success, 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_METRICS = REPO_ROOT / "benchmarks" / "metrics.jsonl"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR10.json"

#: Per-span fields copied into the report (missing ones become null).
FIELDS = ("count", "total_s", "mean_s", "p50_s", "p95_s", "max_s")


def load_spans(path: Path) -> tuple[dict[str, dict], int]:
    """``(spans, skipped)`` of a metrics JSONL file.

    Records without a span name — a run directory's per-cell audit
    lines and progress heartbeats — are counted and skipped, never
    fatal: the same ``metrics.jsonl`` file name serves both the bench
    suite and campaign run directories.
    """
    spans: dict[str, dict] = {}
    skipped = 0
    with open(path, encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}")
            name = record.get("span")
            if not isinstance(name, str):
                skipped += 1
                continue
            spans[name] = {field: record.get(field) for field in FIELDS}
    return spans, skipped


def build_report(spans: dict[str, dict], source: str) -> dict:
    report = {
        "source": source,
        "num_spans": len(spans),
        "spans": {name: spans[name] for name in sorted(spans)},
    }
    # Surface the unified-runtime breakdown as its own section so sweep
    # regressions stand out without digging through the flat span map.
    sweep = {
        name: spans[name]
        for name in sorted(spans)
        if name.startswith("runtime.sweep")
    }
    if sweep:
        report["sweep_timings"] = sweep
    # Same treatment for the live asyncio runtime's spans: wall-clock
    # figures for real runs (CLI invocations, harness executions and
    # the load benchmarks) grouped under one key.
    live = {
        name: spans[name]
        for name in sorted(spans)
        if name.startswith("live.")
    }
    if live:
        report["live_timings"] = live
    # The columnar engine's spans plus the derived per-batch speedups:
    # bench_vector.py records paired vector.bench.object.bN /
    # vector.bench.batch.bN spans over identical workloads, so the
    # ratio of their means is the scenario-throughput multiplier of
    # batching at size N.
    vector = {
        name: spans[name]
        for name in sorted(spans)
        if name.startswith("vector.")
    }
    if vector:
        report["vector_timings"] = vector
        speedups = vector_speedups(spans)
        if speedups:
            report["vector_speedup_vs_object"] = speedups
    # The model checker's spans plus derived throughput: bench_mc.py
    # records exploration timings per reduction mode alongside
    # mc.bench.stats.<mode>.<counter> spans whose sample values are raw
    # frontier counters, from which states/sec, prune ratios and the
    # reduced-vs-unreduced cost ratio are computed here.
    mc = {
        name: spans[name]
        for name in sorted(spans)
        if name.startswith("mc.") and not name.startswith("mc.bench.stats.")
    }
    if mc:
        report["mc_timings"] = {"spans": mc, **mc_derived(spans)}
    return report


def _mc_counter(spans: dict[str, dict], mode: str, counter: str) -> float | None:
    """A frontier counter smuggled through a stats span's mean sample."""
    stats = spans.get(f"mc.bench.stats.{mode}.{counter}")
    if stats is None:
        return None
    return stats.get("mean_s")


def mc_derived(spans: dict[str, dict]) -> dict:
    """States/sec, prune ratios and the reduction cost ratio."""
    derived: dict[str, dict] = {}
    rates: dict[str, float] = {}
    prunes: dict[str, dict[str, float]] = {}
    for mode in ("reduced", "unreduced", "n4t2"):
        explore_span = spans.get(f"mc.bench.explore.{mode}")
        visited = _mc_counter(spans, mode, "states_visited")
        generated = _mc_counter(spans, mode, "states_generated")
        revisits = _mc_counter(spans, mode, "revisit_pruned")
        dominated = _mc_counter(spans, mode, "dominance_pruned")
        choices = _mc_counter(spans, mode, "choices_explored")
        if explore_span and explore_span.get("mean_s") and generated:
            rates[mode] = round(generated / explore_span["mean_s"], 1)
        ratios: dict[str, float] = {}
        if generated and revisits is not None:
            ratios["revisit"] = round(revisits / generated, 3)
        if choices and dominated is not None:
            ratios["dominance"] = round(dominated / (choices + dominated), 3)
        if ratios:
            prunes[mode] = ratios
    if rates:
        derived["states_per_s"] = rates
    if prunes:
        derived["prune_ratios"] = prunes
    reduced = spans.get("mc.bench.explore.reduced")
    unreduced = spans.get("mc.bench.explore.unreduced")
    if (
        reduced
        and unreduced
        and reduced.get("mean_s")
        and unreduced.get("mean_s")
    ):
        derived["unreduced_vs_reduced_cost"] = round(
            unreduced["mean_s"] / reduced["mean_s"], 2
        )
    return derived


def vector_speedups(spans: dict[str, dict]) -> dict[str, float]:
    """``batch label -> object_mean / batch_mean`` for paired bench spans."""
    speedups: dict[str, float] = {}
    prefix = "vector.bench.object."
    for name in sorted(spans):
        if not name.startswith(prefix):
            continue
        label = name[len(prefix):]
        twin = spans.get(f"vector.bench.batch.{label}")
        if twin is None:
            continue
        object_mean = spans[name].get("mean_s")
        batch_mean = twin.get("mean_s")
        if not object_mean or not batch_mean:
            continue
        speedups[label] = round(object_mean / batch_mean, 2)
    return speedups


def load_snapshots(root: Path, skip: Path | None = None) -> dict[str, dict]:
    """Committed ``BENCH_*.json`` snapshots, keyed by label, name order.

    ``skip`` excludes the output being (re)written so the trajectory
    only covers *prior* snapshots plus the fresh spans appended by the
    caller.  Unreadable snapshots are skipped — a half-written file
    must not break report generation.
    """
    snapshots: dict[str, dict] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        if skip is not None and path.resolve() == skip.resolve():
            continue
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        spans = data.get("spans")
        if isinstance(spans, dict):
            snapshots[path.stem] = spans
    return snapshots


def build_trajectory(snapshots: dict[str, dict]) -> dict | None:
    """The cross-snapshot ``mean_s`` series of every shared span."""
    if len(snapshots) < 2:
        return None
    labels = list(snapshots)
    seen: dict[str, int] = {}
    for spans in snapshots.values():
        for name in spans:
            seen[name] = seen.get(name, 0) + 1
    shared = sorted(name for name, count in seen.items() if count >= 2)
    if not shared:
        return None
    return {
        "snapshots": labels,
        "mean_s": {
            name: [
                (snapshots[label].get(name) or {}).get("mean_s")
                for label in labels
            ]
            for name in shared
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "metrics",
        nargs="?",
        default=str(DEFAULT_METRICS),
        help="metrics JSONL emitted by the benchmark suite",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(DEFAULT_OUTPUT),
        help="where to write the summary (default: BENCH_PR8.json)",
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="skip the cross-PR trajectory over committed BENCH_*.json",
    )
    args = parser.parse_args(argv)
    metrics_path = Path(args.metrics)
    run_dir: Path | None = None
    if metrics_path.is_dir():
        run_dir = metrics_path
        metrics_path = metrics_path / "metrics.jsonl"
    elif (
        metrics_path.name == "metrics.jsonl"
        and (metrics_path.parent / "manifest.json").exists()
    ):
        run_dir = metrics_path.parent
    try:
        spans, skipped = load_spans(metrics_path)
    except OSError as exc:
        if run_dir is not None and not metrics_path.exists():
            # A run dir before its first completed cell: metrics.jsonl
            # is appended lazily, so "no file yet" is just the emptiest
            # form of in-progress, not an error.
            spans, skipped = {}, 0
        else:
            print(f"cannot read {metrics_path}: {exc}", file=sys.stderr)
            return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = build_report(spans, metrics_path.name)
    if skipped:
        report["skipped_records"] = skipped
    if run_dir is not None:
        in_progress = not (run_dir / "summary.json").exists()
        report["in_progress"] = in_progress
        if in_progress:
            print(
                f"note: {run_dir} has no summary.json yet — partial "
                "report (campaign in progress or interrupted)",
                file=sys.stderr,
            )
    output = Path(args.output)
    if not args.no_trajectory:
        snapshots = load_snapshots(REPO_ROOT, skip=output)
        snapshots[output.stem] = report["spans"]
        trajectory = build_trajectory(snapshots)
        if trajectory is not None:
            report["trajectory"] = trajectory
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output} ({len(spans)} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
