"""The paper's conclusion as one table: RS vs RWS latency measures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.latency import latency_profile, verify_algorithm
from repro.rounds.algorithm import RoundAlgorithm
from repro.rounds.executor import RoundModel


@dataclass
class SummaryRow:
    """One (algorithm, model) cell of the headline comparison table."""

    algorithm: str
    model: str
    n: int
    t: int
    uniform_safe: bool
    lat: int | None
    Lat: int | None
    Lambda: int | None

    def cells(self) -> list[str]:
        def fmt(value: int | None) -> str:
            return "-" if value is None else str(value)

        return [
            self.algorithm,
            self.model,
            str(self.n),
            str(self.t),
            "yes" if self.uniform_safe else "NO",
            fmt(self.lat),
            fmt(self.Lat),
            fmt(self.Lambda),
        ]


def latency_summary_table(
    algorithms: Sequence[RoundAlgorithm],
    models: Sequence[RoundModel] = (RoundModel.RS, RoundModel.RWS),
    *,
    n: int = 3,
    t: int = 1,
) -> list[SummaryRow]:
    """Compute the full comparison: safety verdicts and latency measures.

    Latency measures are only meaningful for algorithms that solve the
    problem in the model, so cells of unsafe (algorithm, model) pairs
    hold the safety verdict and dashes.
    """
    rows: list[SummaryRow] = []
    for algorithm in algorithms:
        for model in models:
            report = verify_algorithm(algorithm, n, t, model)
            if report.ok:
                profile = latency_profile(algorithm, n, t, model)
                rows.append(
                    SummaryRow(
                        algorithm=algorithm.name,
                        model=model.value,
                        n=n,
                        t=t,
                        uniform_safe=True,
                        lat=profile.lat,
                        Lat=profile.Lat,
                        Lambda=profile.Lambda,
                    )
                )
            else:
                rows.append(
                    SummaryRow(
                        algorithm=algorithm.name,
                        model=model.value,
                        n=n,
                        t=t,
                        uniform_safe=False,
                        lat=None,
                        Lat=None,
                        Lambda=None,
                    )
                )
    return rows


def format_table(rows: Iterable[SummaryRow]) -> str:
    """Render summary rows as an aligned plain-text table."""
    header = ["algorithm", "model", "n", "t", "uniform", "lat", "Lat", "Λ"]
    body = [row.cells() for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_line(header), fmt_line(["-" * w for w in widths])]
    lines.extend(fmt_line(line) for line in body)
    return "\n".join(lines)
