"""The A1 algorithm (Figure 4): uniform consensus in RS with Λ = 1.

A1 tolerates a single crash (``t = 1``) and runs in (at most) two
rounds:

* Round 1 — ``p1`` broadcasts its initial value ``v1``; every process
  that receives ``v1`` decides it immediately.
* Round 2 — deciders report ``(p1, v1)`` to all; if ``p1`` crashed
  before reaching anyone, ``p2`` broadcasts its own value ``v2`` and
  everyone (except the dead ``p1``) decides ``v2``.

Every failure-free run decides at round 1, hence ``Λ(A1) = 1`` in RS —
strictly better than any RWS algorithm, for which ``Λ >= 2``
(experiments E8–E10).  In RWS the very same code is *not uniform*:
``p1`` may broadcast, decide ``v1`` on its own message, and crash while
all its messages are pending; the survivors then decide ``v2``.

Process indexing: the paper's ``p1`` is pid 0 and ``p2`` is pid 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.rounds.algorithm import RoundAlgorithm, broadcast

#: Tag of the round-2 "p1 decided v" report message.
REPORT_TAG = "p1-report"


@dataclass(frozen=True)
class A1State:
    """State of Figure 4: round counter, working value ``w``, decision."""

    rounds: int
    w: Any
    decided: bool
    decision: Any
    n: int


class A1(RoundAlgorithm):
    """Figure 4: two-round uniform consensus for RS, t = 1."""

    name = "A1"

    def initial_state(self, pid: int, n: int, t: int, value: Any) -> A1State:
        if t != 1:
            raise ConfigurationError(
                f"A1 tolerates exactly one crash; got t={t}"
            )
        if n < 2:
            raise ConfigurationError("A1 needs at least two processes")
        return A1State(rounds=0, w=value, decided=False, decision=None, n=n)

    def messages(self, pid: int, state: A1State) -> Mapping[int, Any]:
        if state.rounds == 0:  # round 1
            if pid == 0:
                return broadcast(("value", state.w), state.n)
            return {}
        if state.rounds == 1:  # round 2
            if state.decided:
                return broadcast((REPORT_TAG, state.w), state.n)
            if pid == 1:
                return broadcast(("value", state.w), state.n)
            return {}
        return {}

    def transition(
        self, pid: int, state: A1State, received: Mapping[int, Any]
    ) -> A1State:
        rounds = state.rounds + 1
        w = state.w
        decided = state.decided
        decision = state.decision

        if rounds == 1:
            if 0 in received:
                _, v1 = received[0]
                w = v1
                decision = v1
                decided = True
        elif rounds == 2 and not decided:
            reports = [
                payload[1]
                for payload in received.values()
                if payload[0] == REPORT_TAG
            ]
            if reports:
                decision = reports[0]
                decided = True
            elif 1 in received:
                _, v2 = received[1]
                decision = v2
                decided = True

        return replace(
            state, rounds=rounds, w=w, decided=decided, decision=decision
        )

    def decision_of(self, state: A1State) -> Any:
        return state.decision

    def halted(self, pid: int, state: A1State) -> bool:
        # Round-1 deciders still owe their round-2 report.
        return state.rounds >= 2
