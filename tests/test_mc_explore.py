"""Exploration invariants: canonicalization, admissibility, reductions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mc import McTask, check, explore
from repro.mc.config import Configuration, canonical_form, canonical_key
from repro.mc.symmetry import orbit_canonical, symmetry_for
from repro.obs.causal import cone_signature
from repro.rounds.scenario import CrashEvent, FailureScenario, validate_scenario
from repro.runtime.harness import execute_request
from repro.runtime.request import ExecutionRequest


def _initial_config(algorithm_key, values, t=1):
    from repro.runtime.registry import make_algorithm

    algorithm = make_algorithm(algorithm_key)
    n = len(values)
    return Configuration(
        round=0,
        states=tuple(
            algorithm.initial_state(pid, n, t, values[pid])
            for pid in range(n)
        ),
        decided=(),
        initial_values=tuple(sorted(set(values))),
        obligations=(),
    )


class TestCanonicalization:
    def test_canonical_form_is_stable(self):
        config = _initial_config("floodset", (0, 1, 1))
        assert canonical_form(config) == canonical_form(config)
        assert canonical_key(config) == canonical_key(config)

    def test_distinct_states_hash_differently(self):
        a = _initial_config("floodset", (0, 1, 1))
        b = _initial_config("floodset", (1, 1, 1))
        assert canonical_key(a) != canonical_key(b)

    def test_orbit_canonical_is_permutation_invariant(self):
        # FloodSet's symmetry group is the full symmetric group: any
        # pid relabeling of an initial configuration lands in the same
        # orbit.
        spec = symmetry_for("floodset")
        form_a, _ = orbit_canonical(_initial_config("floodset", (0, 1, 1)), spec)
        form_b, _ = orbit_canonical(_initial_config("floodset", (1, 0, 1)), spec)
        form_c, _ = orbit_canonical(_initial_config("floodset", (0, 0, 1)), spec)
        assert form_a == form_b
        assert form_a != form_c

    def test_floodset_is_not_value_symmetric(self):
        # FloodSet decides min(received values): flipping 0s and 1s is
        # NOT a symmetry, so the assignments (0,1,1) and (1,0,0) — pid
        # relabelings aside — must stay in distinct orbits.
        spec = symmetry_for("floodset")
        form_a, _ = orbit_canonical(_initial_config("floodset", (0, 1, 1)), spec)
        form_b, _ = orbit_canonical(_initial_config("floodset", (1, 0, 0)), spec)
        assert form_a != form_b

    def test_a1_is_value_symmetric(self):
        # A1 forwards whatever value pid 0 proposes, so the 0<->1 value
        # flip IS a symmetry and the flipped assignment collapses.
        spec = symmetry_for("a1")
        form_a, _ = orbit_canonical(_initial_config("a1", (0, 1, 1)), spec)
        form_b, _ = orbit_canonical(_initial_config("a1", (1, 0, 0)), spec)
        assert form_a == form_b

    def test_a1_pids_0_and_1_are_fixed(self):
        # A1's first two processes have special roles; only pids >= 2
        # are interchangeable, so moving the distinguished value onto
        # pid 1 must NOT collapse with it sitting on pid 2.
        spec = symmetry_for("a1")
        form_a, _ = orbit_canonical(_initial_config("a1", (0, 1, 0)), spec)
        form_b, _ = orbit_canonical(_initial_config("a1", (0, 0, 1)), spec)
        assert form_a != form_b


class TestExploration:
    def test_every_leaf_scenario_is_admissible(self):
        for model in ("RS", "RWS"):
            exploration = explore(
                "floodset", n=3, t=1, model=model, horizon=3
            )
            assert exploration.leaves
            for leaf in exploration.leaves:
                problems = validate_scenario(
                    leaf.scenario, t=1, allow_pending=(model == "RWS")
                )
                assert not problems, problems

    def test_stats_are_consistent(self):
        exploration = explore("floodset", n=3, t=1, model="RS", horizon=3)
        stats = exploration.stats
        assert stats.leaves == len(exploration.leaves)
        assert stats.roots_kept <= stats.roots_total
        assert stats.states_visited <= stats.states_generated
        assert stats.quiescent_leaves <= stats.leaves

    def test_reduction_shrinks_the_frontier(self):
        reduced = explore("floodset", n=3, t=1, model="RS", horizon=3)
        full = explore(
            "floodset", n=3, t=1, model="RS", horizon=3, reduce=False
        )
        assert len(reduced.leaves) < len(full.leaves)
        assert reduced.stats.roots_kept < full.stats.roots_kept

    def test_max_states_guard(self):
        with pytest.raises(ConfigurationError):
            explore(
                "floodset", n=4, t=2, model="RS", horizon=4, max_states=10
            )

    def test_every_leaf_decides_all_correct_processes(self):
        exploration = explore("floodset", n=3, t=1, model="RS", horizon=3)
        for leaf in exploration.leaves:
            for pid in leaf.scenario.correct:
                assert pid in leaf.decisions


class TestReduceNoReduceParity:
    @pytest.mark.parametrize(
        "algorithm,model,expected_holds",
        [
            ("floodset", "RS", True),
            ("floodset", "RWS", False),
            ("floodset-ws", "RWS", True),
            ("a1", "RS", True),
        ],
    )
    def test_verdicts_agree(self, algorithm, model, expected_holds):
        def verdict(reduce):
            return check(
                McTask(
                    property_name="agreement",
                    algorithm=algorithm,
                    n=3,
                    t=1,
                    model=model,
                    horizon=3,
                    reduce=reduce,
                    shrink_witness=False,
                )
            ).verdict

        reduced = verdict(True)
        full = verdict(False)
        assert reduced.holds is expected_holds
        assert reduced.label == full.label
        assert reduced.holds == full.holds


class TestDominanceJustification:
    def test_pruned_send_choice_is_invisible_to_survivors(self):
        # The dominance reduction drops sent_to variation toward
        # recipients that never observe the round (they crash in the
        # same round without applying a transition).  Execute one such
        # pruned pair: p0's round-1 message to p1 is the only
        # difference, and p1 itself crashes in round 1 silently — the
        # survivor's causal cone and decisions must coincide.
        def run(p0_sends_to_p1: bool):
            scenario = FailureScenario(
                n=3,
                crashes=(
                    CrashEvent(
                        pid=0,
                        round=1,
                        sent_to=frozenset({1} if p0_sends_to_p1 else ()),
                    ),
                    CrashEvent(pid=1, round=1, sent_to=frozenset()),
                ),
            )
            assert not validate_scenario(scenario, t=2, allow_pending=False)
            return execute_request(
                ExecutionRequest(
                    name="dominance-pair",
                    engine="rounds",
                    algorithm="floodset",
                    values=(0, 1, 1),
                    t=2,
                    model="RS",
                    scenario=scenario,
                    max_rounds=3,
                    check_consensus=False,
                )
            )

        with_send = run(True)
        without_send = run(False)
        assert (
            cone_signature(with_send.events, 2)
            == cone_signature(without_send.events, 2)
        )
        assert with_send.decisions[2] == without_send.decisions[2]

    def test_dominance_counter_fires_where_views_collapse(self):
        exploration = explore("a1", n=3, t=1, model="RS", horizon=3)
        assert exploration.stats.dominance_pruned > 0
