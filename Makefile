.PHONY: install test test-fast coverage bench bench-report examples experiments report trace-smoke check-smoke sweep-smoke fuzz-smoke live-smoke report-smoke causal-smoke vector-smoke serve-smoke mc-smoke clean

install:
	pip install -e . --no-build-isolation

test:
	PYTHONPATH=src pytest tests/

test-fast:
	PYTHONPATH=src pytest tests/ -m "not slow"

# Tier-1 with line coverage; fails below the floor.  Needs pytest-cov
# (CI installs it; `pip install pytest-cov` locally).
COVERAGE_FLOOR ?= 80

coverage:
	@PYTHONPATH=src python -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov is not installed; run: pip install pytest-cov"; exit 1; }
	PYTHONPATH=src pytest tests/ -q \
		--cov=repro --cov-report=term-missing:skip-covered \
		--cov-fail-under=$(COVERAGE_FLOOR)

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	PYTHONPATH=src python scripts/bench_report.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

experiments:
	python -m repro experiments --extensions

report:
	python -m repro report --output EXPERIMENTS.md

TRACE_SMOKE_OUT ?= /tmp/repro_trace_smoke.jsonl

trace-smoke:
	PYTHONPATH=src python -m repro trace floodset-rws-violation --jsonl $(TRACE_SMOKE_OUT)
	PYTHONPATH=src python scripts/check_trace.py $(TRACE_SMOKE_OUT)

check-smoke:
	PYTHONPATH=src python -m repro check fopt-fast
	PYTHONPATH=src python -m repro check floodset-rws

SWEEP_SMOKE_CACHE ?= /tmp/repro_sweep_smoke_cache

# Run a small checked sweep twice against a fresh cache: the first run
# executes every cell, the second must serve all of them from the
# cache ("executed 0").
sweep-smoke:
	rm -rf $(SWEEP_SMOKE_CACHE)
	PYTHONPATH=src python -m repro sweep oracle-sweep --count 2 --check \
		--cache-dir $(SWEEP_SMOKE_CACHE)
	PYTHONPATH=src python -m repro sweep oracle-sweep --count 2 --check \
		--cache-dir $(SWEEP_SMOKE_CACHE) | tee /dev/stderr | grep -q "executed 0,"

FUZZ_SMOKE_CACHE ?= /tmp/repro_fuzz_smoke_cache

# The CI fuzzing campaign: >= 100 generated scenarios per emulation
# pair (differential twins on every one), plus a rounds-only stream
# and an all-engine round-robin exercising the parallel + cached path
# with both batch parity oracles.
fuzz-smoke:
	rm -rf $(FUZZ_SMOKE_CACHE)
	PYTHONPATH=src python -m repro fuzz --budget 120 --seed 0 --engine rs_on_ss
	PYTHONPATH=src python -m repro fuzz --budget 120 --seed 0 --engine rws_on_sp
	PYTHONPATH=src python -m repro fuzz --budget 100 --seed 0 --engine rounds
	PYTHONPATH=src python -m repro fuzz --budget 200 --seed 1 --jobs 2 \
		--cache-dir $(FUZZ_SMOKE_CACHE)

LIVE_SMOKE_METRICS ?= /tmp/repro_live_smoke_metrics.jsonl

# A real asyncio cluster under hard wall-clock bounds: one lossy run
# with a mid-run crash, one adversarial run (drops + a partition
# window) under load, both trace-checked; then the checked live-smoke
# space through the unified runtime.  The CLI runs' span metrics roll
# into BENCH_PR7.json's live_timings section.
live-smoke:
	rm -f $(LIVE_SMOKE_METRICS)
	PYTHONPATH=src timeout 60 python -m repro live --algorithm floodset \
		--net-profile lossy --crash 1@30 --seed 7 --check \
		--metrics $(LIVE_SMOKE_METRICS)
	PYTHONPATH=src timeout 60 python -m repro live --algorithm floodset-ws \
		--net-profile adversarial --crash 2@50 --load 8 --concurrency 4 \
		--seed 3 --check --metrics $(LIVE_SMOKE_METRICS)
	PYTHONPATH=src timeout 120 python -m repro sweep live-smoke --check
	PYTHONPATH=src python scripts/bench_report.py $(LIVE_SMOKE_METRICS) \
		-o BENCH_PR7.json

CAUSAL_SMOKE_TRACE ?= /tmp/repro_causal_smoke.jsonl
CAUSAL_SMOKE_LEGACY ?= /tmp/repro_causal_smoke_legacy.jsonl

# The causal pipeline end to end: a live adversarial run with a mid-run
# crash exports a causally-tagged trace; `repro causal` must extract
# critical paths and forensics from it (human, --diagram and --json
# renderings), the --json rendering must attribute at least one decision
# across latency legs, and check_trace's --causal layer must validate
# every msg_id/wall_s stamp plus the Λ bound.  A pre-PR7-style
# deterministic trace (no `extra` fields) must still pass --schema-only
# untouched — causal tracing is a side band, not a format break.
causal-smoke:
	PYTHONPATH=src timeout 60 python -m repro live --algorithm floodset \
		--net-profile adversarial --crash 2@50 --seed 7 --check \
		--jsonl $(CAUSAL_SMOKE_TRACE)
	PYTHONPATH=src python -m repro causal $(CAUSAL_SMOKE_TRACE) --diagram
	PYTHONPATH=src python -m repro causal $(CAUSAL_SMOKE_TRACE) --json | \
		PYTHONPATH=src python -c "import json,sys; s=json.load(sys.stdin); \
		assert s['decisions'] and all(d['legs'] for d in s['decisions']), \
		'no leg attribution'"
	PYTHONPATH=src python scripts/check_trace.py --causal $(CAUSAL_SMOKE_TRACE)
	PYTHONPATH=src python -m repro trace floodset-rws-violation \
		--jsonl $(CAUSAL_SMOKE_LEGACY)
	PYTHONPATH=src python scripts/check_trace.py --schema-only \
		$(CAUSAL_SMOKE_LEGACY)

VECTOR_SMOKE_DIR ?= /tmp/repro_vector_smoke

# The columnar kernel's differential goldens: the vector engine's
# merged sweep trace must be byte-identical (cmp) to the object
# engine's on the Λ sweep and on the full oracle-sweep space — under
# the numpy backend, the forced pure-Python backend, and a 2-worker
# pool — then a vector fuzz stream, whose replay oracle re-executes
# every case on the object engine (the built-in vector↔object twin).
vector-smoke:
	rm -rf $(VECTOR_SMOKE_DIR) && mkdir -p $(VECTOR_SMOKE_DIR)
	PYTHONPATH=src python -m repro sweep e10-lambda --check \
		--jsonl $(VECTOR_SMOKE_DIR)/e10_object.jsonl
	PYTHONPATH=src python -m repro sweep e10-lambda --check --engine vector \
		--jsonl $(VECTOR_SMOKE_DIR)/e10_vector.jsonl
	cmp $(VECTOR_SMOKE_DIR)/e10_object.jsonl $(VECTOR_SMOKE_DIR)/e10_vector.jsonl
	REPRO_VECTOR_BACKEND=python PYTHONPATH=src python -m repro sweep e10-lambda \
		--check --engine vector --jsonl $(VECTOR_SMOKE_DIR)/e10_python.jsonl
	cmp $(VECTOR_SMOKE_DIR)/e10_object.jsonl $(VECTOR_SMOKE_DIR)/e10_python.jsonl
	PYTHONPATH=src python -m repro sweep oracle-sweep --check \
		--jsonl $(VECTOR_SMOKE_DIR)/oracle_object.jsonl
	PYTHONPATH=src python -m repro sweep oracle-sweep --check --engine vector \
		--jobs 2 --jsonl $(VECTOR_SMOKE_DIR)/oracle_vector.jsonl
	cmp $(VECTOR_SMOKE_DIR)/oracle_object.jsonl $(VECTOR_SMOKE_DIR)/oracle_vector.jsonl
	PYTHONPATH=src python -m repro fuzz --budget 100 --seed 0 --engine vector

REPORT_SMOKE_RUNS ?= /tmp/repro_report_smoke_runs

# The run-artifact pipeline end to end: a small checked sweep writes a
# run directory, the resumed second leg must re-execute nothing (the
# summary's own counters prove it), and the machine report must pass
# the schema/SLO validator both from disk and over the --json stream.
report-smoke:
	rm -rf $(REPORT_SMOKE_RUNS)
	PYTHONPATH=src python -m repro sweep oracle-sweep --check \
		--run-dir $(REPORT_SMOKE_RUNS)
	PYTHONPATH=src python -m repro sweep oracle-sweep --check \
		--run-dir $(REPORT_SMOKE_RUNS) | tee /dev/stderr | grep -q "executed 0,"
	PYTHONPATH=src python -m repro report $(REPORT_SMOKE_RUNS)
	PYTHONPATH=src python scripts/check_summary.py $(REPORT_SMOKE_RUNS)
	PYTHONPATH=src python -m repro report $(REPORT_SMOKE_RUNS) --json | \
		PYTHONPATH=src python scripts/check_summary.py -

SERVE_SMOKE_DIR ?= /tmp/repro_serve_smoke

# The campaign fabric under real fault injection: one coordinator plus
# three workers over loopback HTTP, one worker SIGKILLed mid-shard (the
# orchestration script asserts the shard re-queues and nothing
# re-executes), then the merged trace must cmp byte-identical to a
# single-process sweep of the same space and the summary must pass the
# schema/SLO validator.
serve-smoke:
	rm -rf $(SERVE_SMOKE_DIR) && mkdir -p $(SERVE_SMOKE_DIR)
	PYTHONPATH=src python -m repro sweep e10-lambda \
		--jsonl $(SERVE_SMOKE_DIR)/solo.jsonl
	PYTHONPATH=src timeout 300 python scripts/serve_smoke.py \
		--space e10-lambda --run-dir $(SERVE_SMOKE_DIR)/runs \
		--jsonl $(SERVE_SMOKE_DIR)/serve.jsonl
	cmp $(SERVE_SMOKE_DIR)/solo.jsonl $(SERVE_SMOKE_DIR)/serve.jsonl
	PYTHONPATH=src python scripts/check_summary.py $(SERVE_SMOKE_DIR)/runs

MC_SMOKE_DIR ?= /tmp/repro_mc_smoke

# The model checker's acceptance gauntlet: exhaustive agreement for A1
# (the CLI must clamp --t 2 to the algorithm's t=1) with reduced and
# unreduced frontiers agreeing, the machine-checked Λ(A1) = 1 verdict,
# the n=4 t=2 FloodSet frontier, and a planted emulation bug the grid
# checker must refute with a witness that replays (exit 0) under the
# same injection.
mc-smoke:
	rm -rf $(MC_SMOKE_DIR) && mkdir -p $(MC_SMOKE_DIR)
	PYTHONPATH=src python -m repro mc agreement --algorithm A1 --n 3 --t 2 | \
		tee /dev/stderr | grep -q "HOLDS(exhaustive)"
	PYTHONPATH=src python -m repro mc agreement --algorithm a1 --n 3 --t 1 \
		--no-reduce | tee /dev/stderr | grep -q "HOLDS(exhaustive)"
	PYTHONPATH=src python -m repro mc lambda --algorithm a1 --n 3 --t 1 | \
		tee /dev/stderr | grep -q "lambda: 1"
	PYTHONPATH=src python -m repro mc agreement --algorithm floodset --n 4 \
		--t 2 --horizon 4 | tee /dev/stderr | grep -q "HOLDS(exhaustive)"
	status=0; REPRO_INJECT_BUG=ss-drop-received PYTHONPATH=src \
		python -m repro mc agreement --algorithm floodset --engine rs_on_ss \
		--out $(MC_SMOKE_DIR) || status=$$?; test "$$status" -eq 1
	REPRO_INJECT_BUG=ss-drop-received PYTHONPATH=src python -m repro replay \
		--repro $(MC_SMOKE_DIR)/mc-witness-00.json

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
