"""Tests for the trace renderers."""

from __future__ import annotations

import random

from repro.consensus import FloodSet
from repro.failures import FailurePattern
from repro.models import SynchronousModel
from repro.rounds import FailureScenario, run_rs, run_rws
from repro.sdd import solve_sdd_ss
from repro.trace import (
    describe_round_run,
    describe_run,
    round_tableau,
    step_diagram,
)
from repro.workloads import a1_rws_disagreement, crash_mid_broadcast


class TestStepDiagram:
    def make_run(self, crashes=None):
        pattern = FailurePattern.with_crashes(2, crashes or {})
        return solve_sdd_ss(1, pattern, rng=random.Random(1))

    def test_contains_header_and_steps(self):
        text = step_diagram(self.make_run())
        assert "p0" in text and "p1" in text
        assert "s->1" in text  # the sender's send

    def test_receive_annotation(self):
        text = step_diagram(self.make_run())
        assert "r(0)" in text

    def test_crash_marker(self):
        text = step_diagram(self.make_run(crashes={0: 1}))
        assert "X crash" in text

    def test_truncation(self):
        pattern = FailurePattern.crash_free(3)
        model = SynchronousModel()
        from repro.simulation.automaton import IdleAutomaton

        run = model.executor(IdleAutomaton(), 3, pattern).execute(100)
        text = step_diagram(run, max_rows=10)
        assert "more steps" in text

    def test_describe_run_summary(self):
        text = describe_run(self.make_run())
        assert "messages" in text and "steps" in text


class TestRoundTableau:
    def test_failure_free_tableau(self):
        run = run_rs(FloodSet(), [0, 1, 1], FailureScenario.failure_free(3), t=1)
        text = round_tableau(run)
        assert "heard:012" in text
        assert "!0" in text  # decisions on value 0

    def test_dead_process_column(self):
        run = run_rs(
            FloodSet(), [0, 1, 1], crash_mid_broadcast(3, reached=()), t=1
        )
        text = round_tableau(run)
        assert "-" in text

    def test_crash_marker_in_decide_then_crash(self):
        from repro.consensus import A1

        run = run_rws(A1(), [0, 1, 1], a1_rws_disagreement(3), t=1)
        text = round_tableau(run)
        assert "X" in text
        assert "!0" in text and "!1" in text  # the disagreement, visible

    def test_describe_round_run_mentions_everything(self):
        run = run_rs(FloodSet(), [0, 1, 1], FailureScenario.failure_free(3), t=1)
        text = describe_round_run(run)
        assert "FloodSet" in text
        assert "RS" in text
        assert "decisions" in text


class TestDotExport:
    def test_step_run_dot_structure(self):
        import random

        from repro.failures import FailurePattern
        from repro.sdd import solve_sdd_ss
        from repro.trace import step_run_to_dot

        pattern = FailurePattern.with_crashes(2, {0: 2})
        run = solve_sdd_ss(1, pattern, rng=random.Random(1))
        dot = step_run_to_dot(run)
        assert dot.startswith("digraph run {")
        assert dot.rstrip().endswith("}")
        assert "CRASH" in dot
        assert "color=blue" in dot  # at least one message arrow

    def test_round_run_dot_marks_pending_and_decisions(self):
        from repro.consensus import A1
        from repro.rounds import run_rws
        from repro.trace import round_run_to_dot
        from repro.workloads import a1_rws_disagreement

        run = run_rws(A1(), [0, 1, 1], a1_rws_disagreement(3), t=1)
        dot = round_run_to_dot(run)
        assert "pending" in dot
        assert "decide" in dot
        assert dot.count("->") > 3

    def test_dot_quotes_payloads(self):
        from repro.consensus import FloodSet
        from repro.rounds import FailureScenario, run_rs
        from repro.trace import round_run_to_dot

        run = run_rs(
            FloodSet(), ['a "b"', "c", "d"],
            FailureScenario.failure_free(3), t=1,
        )
        dot = round_run_to_dot(run)
        assert "digraph" in dot
