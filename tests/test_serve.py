"""Fault-injection rig for the sharded campaign fabric (``repro serve``).

The acceptance claims under test, each against a live coordinator:

* a worker killed mid-shard forfeits only its lease — the shard is
  re-leased, and the merged trace stays byte-identical to a
  single-process ``repro sweep`` of the same space;
* a coordinator killed at ~50% resumes from the run directory with
  ``re_executed == 0`` (completed cells are never resharded);
* two workers racing one shard (an expired lease re-granted) both
  submit, the merge dedupes by cache key, and the folded metrics stay
  exact;
* malformed ``/submit`` payloads are quarantined without corrupting
  the result store or the final artifacts.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.runtime.request import batch_cache_keys
from repro.runtime.space import ScenarioSpace, e10_lambda_space, oracle_sweep_space
from repro.runtime.sweep import run_space
from repro.obs.report import summary_problems
from repro.serve import (
    Coordinator,
    CoordinatorServer,
    CoordinatorUnreachable,
    ServeAPIError,
    ServeClient,
    ShardPlan,
    ShardState,
    SubmitError,
    execute_shard,
    plan_shards,
    run_worker,
)
from repro.serve.shards import DONE, LEASED, PENDING


def merged_bytes(result) -> str:
    return "\n".join(result.merged_jsonl_lines())


def small_space() -> ScenarioSpace:
    space = e10_lambda_space()
    return ScenarioSpace(name=space.name, requests=space.requests[:10])


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# Shard planning units
# ---------------------------------------------------------------------------


class TestShardPlanning:
    def test_chunks_in_order_covering_every_index(self):
        plans = plan_shards([3, 1, 4, 1, 5, 9, 2], shard_size=3)
        assert [plan.indices for plan in plans] == [
            (3, 1, 4),
            (1, 5, 9),
            (2,),
        ]
        assert [plan.shard_id for plan in plans] == [0, 1, 2]
        assert sum(len(plan) for plan in plans) == 7

    def test_empty_input_plans_nothing(self):
        assert plan_shards([]) == []

    def test_shard_size_must_be_positive(self):
        with pytest.raises(ValueError):
            plan_shards([0, 1], shard_size=0)

    def test_lease_lifecycle(self):
        state = ShardState(ShardPlan(0, (1, 2)))
        assert state.status == PENDING
        state.lease("abc", "w1", deadline=10.0)
        assert state.status == LEASED
        assert state.worker_id == "w1"
        state.expire()
        assert state.status == PENDING
        assert state.lease_id is None
        assert state.requeues == 1
        state.lease("def", "w2", deadline=20.0)
        state.complete()
        assert state.status == DONE


# ---------------------------------------------------------------------------
# Coordinator semantics (direct drive, injectable clock)
# ---------------------------------------------------------------------------


class TestCoordinator:
    def test_distributed_run_matches_single_process_sweep(self, tmp_path):
        space = small_space()
        coordinator = Coordinator(
            space, run_root=str(tmp_path / "runs"), shard_size=3
        )
        while True:
            grant = coordinator.claim("w1")
            if grant.get("done"):
                break
            results = execute_shard(grant)
            receipt = coordinator.submit(
                {
                    "shard_id": grant["shard_id"],
                    "lease_id": grant["lease_id"],
                    "worker_id": "w1",
                    "results": results,
                }
            )
            assert receipt["stale"] is False
        result, summary = coordinator.finalize()
        solo = run_space(space)
        assert merged_bytes(result) == merged_bytes(solo)
        assert result.metrics.state() == solo.metrics.state()
        assert summary["resume"]["re_executed"] == 0
        assert summary["serve"]["cells"]["executed"] == len(space.requests)
        assert summary_problems(summary) == []

    def test_expired_lease_requeues_shard(self, tmp_path):
        clock = FakeClock()
        space = small_space()
        coordinator = Coordinator(
            space,
            run_root=str(tmp_path / "runs"),
            shard_size=4,
            lease_ttl=5.0,
            clock=clock,
        )
        first = coordinator.claim("w1")
        clock.now += 6.0
        second = coordinator.claim("w2")
        # w1's lease expired, so w2 is granted the *same* shard again.
        assert second["shard_id"] == first["shard_id"]
        assert second["lease_id"] != first["lease_id"]
        assert coordinator.shards[first["shard_id"]].requeues == 1
        assert coordinator.status()["shards"]["requeued"] == 1

    def test_lease_race_dedupes_and_keeps_metrics_exact(self, tmp_path):
        clock = FakeClock()
        space = small_space()
        coordinator = Coordinator(
            space,
            run_root=str(tmp_path / "runs"),
            shard_size=len(space.requests),
            lease_ttl=5.0,
            clock=clock,
        )
        slow = coordinator.claim("w-slow")
        clock.now += 10.0
        fast = coordinator.claim("w-fast")
        assert fast["shard_id"] == slow["shard_id"]
        results = execute_shard(fast)
        fast_receipt = coordinator.submit(
            {
                "shard_id": fast["shard_id"],
                "lease_id": fast["lease_id"],
                "worker_id": "w-fast",
                "results": results,
            }
        )
        assert fast_receipt["accepted"] == len(space.requests)
        # The slow worker finally submits the same shard under its dead
        # lease: every cell dedupes, the submission is counted stale.
        slow_receipt = coordinator.submit(
            {
                "shard_id": slow["shard_id"],
                "lease_id": slow["lease_id"],
                "worker_id": "w-slow",
                "results": execute_shard(slow),
            }
        )
        assert slow_receipt["stale"] is True
        assert slow_receipt["accepted"] == 0
        assert slow_receipt["duplicates"] == len(space.requests)
        assert coordinator.duplicate_cells == len(space.requests)

        result, summary = coordinator.finalize()
        solo = run_space(space)
        assert merged_bytes(result) == merged_bytes(solo)
        # Metrics are exact: the duplicate submission contributed nothing.
        assert result.metrics.state() == solo.metrics.state()
        assert summary["resume"]["executed"] == len(space.requests)
        assert summary["serve"]["stale_submissions"] == 1

    def test_coordinator_killed_at_half_resumes_with_zero_reexecution(
        self, tmp_path
    ):
        space = small_space()
        root = str(tmp_path / "runs")
        first = Coordinator(space, run_root=root, shard_size=2)
        total_shards = len(first.shards)
        for _ in range(total_shards // 2):
            grant = first.claim("w1")
            first.submit(
                {
                    "shard_id": grant["shard_id"],
                    "lease_id": grant["lease_id"],
                    "worker_id": "w1",
                    "results": execute_shard(grant),
                }
            )
        done_before = len(first.merged)
        assert 0 < done_before < len(space.requests)
        first.mark_interrupted()
        del first  # the "kill": no finalize, leases lost, state gone

        second = Coordinator(space, run_root=root, shard_size=2)
        # Completed cells were never resharded — only the remainder is.
        assert len(second.completed_before) == done_before
        assert (
            sum(len(shard.plan) for shard in second.shards)
            == len(space.requests) - done_before
        )
        while True:
            grant = second.claim("w2")
            if grant.get("done"):
                break
            second.submit(
                {
                    "shard_id": grant["shard_id"],
                    "lease_id": grant["lease_id"],
                    "worker_id": "w2",
                    "results": execute_shard(grant),
                }
            )
        result, summary = second.finalize()
        assert summary["resume"]["completed_before"] == done_before
        assert summary["resume"]["re_executed"] == 0
        assert summary["resume"]["executed"] == len(space.requests) - done_before
        assert merged_bytes(result) == merged_bytes(run_space(space))
        assert summary_problems(summary) == []

    def test_finalize_refuses_incomplete_campaign(self, tmp_path):
        coordinator = Coordinator(
            small_space(), run_root=str(tmp_path / "runs")
        )
        with pytest.raises(RuntimeError, match="cells still missing"):
            coordinator.finalize()
        assert coordinator.summary_document()["in_progress"] is True

    def test_submit_rejects_junk_without_touching_the_store(self, tmp_path):
        space = small_space()
        coordinator = Coordinator(
            space, run_root=str(tmp_path / "runs"), shard_size=4
        )
        grant = coordinator.claim("w1")
        keys = batch_cache_keys(list(space.requests))
        good = execute_shard(grant)
        bad_payloads = [
            "not even a dict",
            {"shard_id": "zero", "results": []},
            {"shard_id": 999, "results": []},
            {"shard_id": grant["shard_id"], "results": "nope"},
            {"shard_id": grant["shard_id"], "results": [{"garbage": 1}]},
            # A parseable result whose key belongs to a different shard:
            {
                "shard_id": grant["shard_id"],
                "results": [dict(good[0], request_key=keys[-1])],
            },
        ]
        for payload in bad_payloads:
            with pytest.raises(SubmitError):
                coordinator.submit(payload)
        assert coordinator.merged == coordinator.completed_before == set()
        assert len(coordinator.cache) == 0

    def test_quarantine_writes_next_to_results_not_into_them(self, tmp_path):
        coordinator = Coordinator(
            small_space(), run_root=str(tmp_path / "runs")
        )
        path = coordinator.quarantine({"oops": 1}, "test reason")
        record = json.loads(open(path, encoding="utf-8").read())
        assert record["reason"] == "test reason"
        assert coordinator.quarantined == 1
        assert len(coordinator.cache) == 0

    def test_resume_interops_with_single_process_sweep_run_dir(self, tmp_path):
        """serve and ``sweep --run-dir`` share one content-addressed run."""
        from repro.obs.artifacts import RunDir, identity_for_requests
        from repro.runtime.cache import ResultCache
        from repro.runtime.sweep import SweepRunner

        space = small_space()
        root = tmp_path / "runs"
        requests = list(space.requests)
        run_dir = RunDir.open(
            root,
            kind="sweep",
            name=space.name,
            identity=identity_for_requests(requests),
            cells=[(r.name, r.cache_key()) for r in requests],
        )
        SweepRunner(cache=ResultCache(run_dir.results_dir)).run(space)

        coordinator = Coordinator(space, run_root=str(root))
        assert coordinator.run_dir.path == run_dir.path
        assert coordinator.shards == []  # nothing left to do
        assert coordinator.claim("w1") == {"done": True}
        _, summary = coordinator.finalize()
        assert summary["resume"]["completed_before"] == len(requests)
        assert summary["resume"]["re_executed"] == 0


# ---------------------------------------------------------------------------
# The HTTP fabric (real server, real workers, real faults)
# ---------------------------------------------------------------------------


def run_fabric(coordinator, workers=2, **worker_kwargs):
    """Serve ``coordinator`` and drain it with N worker threads."""
    server = CoordinatorServer(coordinator).start()
    try:
        threads = [
            threading.Thread(
                target=run_worker,
                args=(server.url,),
                kwargs=dict(worker_kwargs, worker_id=f"w{i}"),
            )
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert coordinator.is_complete()
        return server
    finally:
        server.shutdown()


class TestHTTPFabric:
    def test_two_workers_over_http_match_sweep_bytes(self, tmp_path):
        space = small_space()
        coordinator = Coordinator(
            space, run_root=str(tmp_path / "runs"), shard_size=3
        )
        run_fabric(coordinator, workers=2)
        result, summary = coordinator.finalize()
        assert merged_bytes(result) == merged_bytes(run_space(space))
        assert summary["resume"]["re_executed"] == 0
        assert len(summary["serve"]["workers"]) >= 1
        assert summary_problems(summary) == []

    def test_killed_worker_mid_shard_is_releases_and_bytes_match(
        self, tmp_path
    ):
        space = small_space()
        coordinator = Coordinator(
            space,
            run_root=str(tmp_path / "runs"),
            shard_size=4,
            lease_ttl=0.3,
        )
        server = CoordinatorServer(coordinator).start()
        try:
            client = ServeClient(server.url)
            # The doomed worker claims a shard, executes it... and dies
            # before submitting (no submit call ever happens).
            doomed = client.claim("doomed")
            assert "shard_id" in doomed
            # A healthy worker drains the run; the forfeited lease
            # expires (ttl 0.3 s) and the shard is re-leased to it.
            stats = run_worker(server.url, worker_id="healthy")
            assert stats["reason"] == "done"
            assert coordinator.is_complete()
            assert coordinator.shards[doomed["shard_id"]].requeues >= 1
        finally:
            server.shutdown()
        result, summary = coordinator.finalize()
        solo = run_space(space)
        assert merged_bytes(result) == merged_bytes(solo)
        assert result.metrics.state() == solo.metrics.state()
        assert summary["serve"]["shards"]["requeued"] >= 1
        assert summary["resume"]["re_executed"] == 0

    def test_malformed_submissions_are_quarantined_not_merged(self, tmp_path):
        space = small_space()
        coordinator = Coordinator(
            space, run_root=str(tmp_path / "runs"), shard_size=4
        )
        server = CoordinatorServer(coordinator).start()
        try:
            client = ServeClient(server.url)
            with pytest.raises(ServeAPIError) as invalid_json:
                client.submit_raw(b"this is not json {{{")
            assert invalid_json.value.status == 400
            with pytest.raises(ServeAPIError) as bad_shape:
                client.submit({"shard_id": 0, "results": [{"junk": True}]})
            assert bad_shape.value.status == 400
            assert "quarantined" in bad_shape.value.body
            # The attacks corrupted nothing: the run completes and the
            # trace is still byte-identical to the single-process sweep.
            stats = run_worker(server.url, worker_id="honest")
            assert stats["reason"] == "done"
        finally:
            server.shutdown()
        result, summary = coordinator.finalize()
        assert merged_bytes(result) == merged_bytes(run_space(space))
        assert summary["serve"]["quarantined"] == 2
        quarantine = coordinator.run_dir.path / "quarantine"
        assert len(list(quarantine.glob("q-*.json"))) == 2
        # Quarantine lives *next to* results/, never inside it.
        assert coordinator.run_dir.completed_keys() == set(
            batch_cache_keys(list(space.requests))
        )

    def test_status_and_summary_endpoints(self, tmp_path):
        space = small_space()
        coordinator = Coordinator(
            space, run_root=str(tmp_path / "runs"), shard_size=4
        )
        server = CoordinatorServer(coordinator).start()
        try:
            client = ServeClient(server.url)
            status = client.status()
            assert status["status"] == "serving"
            assert status["cells"]["planned"] == len(space.requests)
            assert client.summary()["in_progress"] is True
            with pytest.raises(ServeAPIError) as missing:
                client._call("/no-such-endpoint")
            assert missing.value.status == 404
            run_worker(server.url, worker_id="w1")
            coordinator.finalize()
            final = client.summary()
            assert final["resume"]["re_executed"] == 0
            assert client.status()["status"] == "complete"
        finally:
            server.shutdown()

    def test_worker_survives_no_coordinator(self):
        stats = run_worker(
            "127.0.0.1:1",  # nothing listens on port 1
            worker_id="lonely",
            connect_timeout_s=0.2,
        )
        assert stats["reason"] == "disconnected"
        assert stats["shards"] == 0

    def test_client_unreachable_raises_typed_error(self):
        with pytest.raises(CoordinatorUnreachable):
            ServeClient("127.0.0.1:1", timeout_s=0.5).status()


# ---------------------------------------------------------------------------
# Acceptance sweeps: the ISSUE's named spaces, distributed vs solo
# ---------------------------------------------------------------------------


class TestAcceptanceSpaces:
    def test_oracle_sweep_distributed_matches_solo(self, tmp_path):
        space = oracle_sweep_space(count=3)
        coordinator = Coordinator(
            space, run_root=str(tmp_path / "runs"), shard_size=5
        )
        run_fabric(coordinator, workers=2)
        result, summary = coordinator.finalize()
        solo = run_space(space)
        assert merged_bytes(result) == merged_bytes(solo)
        assert result.metrics.state() == solo.metrics.state()
        assert summary["resume"]["re_executed"] == 0

    def test_fuzz_stream_space_over_serve(self, tmp_path):
        from repro.fuzz.strategies import fuzz_stream_space

        space = fuzz_stream_space(budget=6, seed=7)
        assert len(space.requests) == 6
        coordinator = Coordinator(
            space, run_root=str(tmp_path / "runs"), shard_size=2
        )
        run_fabric(coordinator, workers=2)
        result, summary = coordinator.finalize()
        solo = run_space(space)
        assert merged_bytes(result) == merged_bytes(solo)
        assert summary["resume"]["re_executed"] == 0
        # The stream itself is stable: same (budget, seed) → same keys.
        again = fuzz_stream_space(budget=6, seed=7)
        assert batch_cache_keys(list(again.requests)) == batch_cache_keys(
            list(space.requests)
        )


class TestServeCLI:
    """`repro serve` / `repro work` end to end, in-process."""

    def test_cli_fabric_matches_cli_sweep(self, tmp_path, capsys):
        from repro.cli.main import main

        solo_jsonl = tmp_path / "solo.jsonl"
        assert main(
            ["sweep", "e10-lambda", "--jsonl", str(solo_jsonl)]
        ) == 0

        runs = tmp_path / "runs"
        serve_jsonl = tmp_path / "serve.jsonl"
        serve_rc: list[int] = []
        server = threading.Thread(
            target=lambda: serve_rc.append(
                main(
                    [
                        "serve",
                        "e10-lambda",
                        "--run-dir",
                        str(runs),
                        "--jsonl",
                        str(serve_jsonl),
                        "--shard-size",
                        "4",
                        "--linger-s",
                        "0.0",
                        "--check",
                    ]
                )
            )
        )
        server.start()
        try:
            endpoint = None
            for _ in range(300):
                candidates = list(runs.glob("*/serve.json"))
                if candidates:
                    endpoint = json.loads(
                        candidates[0].read_text(encoding="utf-8")
                    )
                    break
                threading.Event().wait(0.05)
            assert endpoint is not None, "serve.json never appeared"
            connect = endpoint["url"].removeprefix("http://")

            worker_rcs: list[int] = []
            workers = [
                threading.Thread(
                    target=lambda: worker_rcs.append(
                        main(["work", "--connect", connect])
                    )
                )
                for _ in range(2)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=120)
        finally:
            server.join(timeout=120)
        assert not server.is_alive()
        assert serve_rc == [0]
        assert worker_rcs == [0, 0]
        assert serve_jsonl.read_bytes() == solo_jsonl.read_bytes()
        run_dirs = list(runs.glob("*/summary.json"))
        assert len(run_dirs) == 1
        summary = json.loads(run_dirs[0].read_text(encoding="utf-8"))
        assert summary["serve"]["cells"]["merged"] == 32
        assert summary["oracle"]["failed"] == 0
        assert summary_problems(summary) == []

    def test_serve_rejects_unknown_space(self, capsys):
        from repro.cli.main import main

        assert main(["serve", "no-such-space"]) == 2
        assert "no-such-space" in capsys.readouterr().err

    def test_work_exits_zero_when_coordinator_absent(self, capsys):
        from repro.cli.main import main

        rc = main(
            [
                "work",
                "--connect",
                "127.0.0.1:1",
                "--connect-timeout",
                "0.2",
            ]
        )
        assert rc == 0
        assert "disconnected" in capsys.readouterr().out

    def test_serve_fuzz_stream_space(self, tmp_path):
        from repro.cli.main import main

        runs = tmp_path / "runs"
        serve_rc: list[int] = []
        server = threading.Thread(
            target=lambda: serve_rc.append(
                main(
                    [
                        "serve",
                        "fuzz",
                        "--count",
                        "6",
                        "--seed",
                        "7",
                        "--run-dir",
                        str(runs),
                        "--shard-size",
                        "3",
                        "--linger-s",
                        "0.0",
                    ]
                )
            )
        )
        server.start()
        try:
            endpoint = None
            for _ in range(300):
                candidates = list(runs.glob("*/serve.json"))
                if candidates:
                    endpoint = json.loads(
                        candidates[0].read_text(encoding="utf-8")
                    )
                    break
                threading.Event().wait(0.05)
            assert endpoint is not None
            connect = endpoint["url"].removeprefix("http://")
            rc = main(["work", "--connect", connect])
        finally:
            server.join(timeout=120)
        assert rc == 0
        assert serve_rc == [0]
