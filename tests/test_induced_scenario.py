"""Cross-validation: emulations vs the direct round executor.

The strongest integration test in the suite: run an algorithm through
the step-level emulation, induce the round-level scenario its crash
pattern realised, re-execute the same algorithm under that scenario in
the plain round executor, and demand identical decisions.  Any
divergence would mean one of the two engines (or the induction)
misreads the model.
"""

from __future__ import annotations

import random

import pytest

from repro.consensus import A1, FloodSet, FloodSetWS
from repro.emulation import (
    emulate_rs_on_ss,
    emulate_rws_on_sp,
    induced_scenario,
)
from repro.failures import FailurePattern, random_pattern
from repro.rounds import run_rs, run_rws, validate_scenario


class TestInducedScenarioShape:
    def test_crash_free_induces_failure_free(self):
        trace = emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], FailurePattern.crash_free(3), t=1,
            num_rounds=2, rng=random.Random(0),
        )
        scenario = induced_scenario(trace)
        assert scenario.num_failures() == 0
        assert not scenario.pending

    def test_initially_dead_induces_round_one_silent_crash(self):
        pattern = FailurePattern.with_crashes(3, {1: 0})
        trace = emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], pattern, t=1,
            num_rounds=2, rng=random.Random(1),
        )
        scenario = induced_scenario(trace)
        event = scenario.crash_of(1)
        assert event is not None
        assert event.round == 1
        assert event.sent_to == frozenset()

    def test_mid_broadcast_crash_induces_partial_send(self):
        """Crash the process between its two send steps of round 1:
        the induced sent_to must be a strict, non-empty subset."""
        found_partial = False
        for crash_time in range(1, 12):
            pattern = FailurePattern.with_crashes(3, {0: crash_time})
            trace = emulate_rs_on_ss(
                FloodSet(), [0, 1, 1], pattern, t=1,
                num_rounds=2, rng=random.Random(3),
            )
            event = induced_scenario(trace).crash_of(0)
            if event and 0 < len(event.sent_to) < 2:
                found_partial = True
                break
        assert found_partial, "no crash time hit the mid-broadcast window"

    @pytest.mark.parametrize("seed", range(6))
    def test_induced_rs_scenarios_are_admissible(self, seed):
        rng = random.Random(seed)
        pattern = random_pattern(3, 1, 25, rng)
        trace = emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], pattern, t=1, num_rounds=2, rng=rng
        )
        scenario = induced_scenario(trace)
        assert validate_scenario(scenario, t=1, allow_pending=False) == []


class TestRSDecisionEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_floodset_decisions_match(self, seed):
        rng = random.Random(seed)
        pattern = random_pattern(3, 1, 25, rng)
        trace = emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], pattern, t=1, num_rounds=2, rng=rng
        )
        direct = run_rs(
            FloodSet(), [0, 1, 1], induced_scenario(trace), t=1,
            max_rounds=2, run_all_rounds=True,
        )
        for pid in range(3):
            assert trace.decisions[pid] == direct.decisions.get(pid)

    @pytest.mark.parametrize("seed", range(5))
    def test_a1_decisions_match(self, seed):
        rng = random.Random(seed)
        pattern = random_pattern(3, 1, 15, rng)
        trace = emulate_rs_on_ss(
            A1(), [0, 1, 1], pattern, t=1, num_rounds=2, rng=rng
        )
        direct = run_rs(
            A1(), [0, 1, 1], induced_scenario(trace), t=1,
            max_rounds=2, run_all_rounds=True,
        )
        for pid in range(3):
            assert trace.decisions[pid] == direct.decisions.get(pid)


class TestRWSDecisionEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_floodsetws_decisions_match(self, seed):
        rng = random.Random(seed)
        pattern = FailurePattern.with_crashes(3, {0: rng.randint(3, 15)})
        trace = emulate_rws_on_sp(
            FloodSetWS(), [0, 1, 1], pattern, t=1, num_rounds=2, rng=rng,
            max_detection_delay=2, delivery_prob=0.15, max_age=80,
        )
        scenario = induced_scenario(trace)
        direct = run_rws(
            FloodSetWS(), [0, 1, 1], scenario, t=1,
            max_rounds=2, run_all_rounds=True,
        )
        for pid in range(3):
            assert trace.decisions[pid] == direct.decisions.get(pid)

    @pytest.mark.parametrize("seed", range(6))
    def test_induced_rws_scenarios_are_admissible(self, seed):
        """Lemma 4.1 in another guise: whatever the SP emulation does is
        expressible as a weak-round-synchrony-respecting scenario."""
        rng = random.Random(seed)
        pattern = FailurePattern.with_crashes(3, {0: rng.randint(3, 15)})
        trace = emulate_rws_on_sp(
            FloodSetWS(), [0, 1, 1], pattern, t=1, num_rounds=2, rng=rng,
            max_detection_delay=2, delivery_prob=0.15, max_age=80,
        )
        scenario = induced_scenario(trace)
        assert validate_scenario(scenario, t=1, allow_pending=True) == []
