"""Tests for the C_Opt and F_Opt fast-path algorithms (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.analysis import latency_profile, verify_algorithm
from repro.consensus import (
    COptFloodSet,
    COptFloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
    check_uniform_consensus_run,
)
from repro.rounds import FailureScenario, RoundModel, run_rs, run_rws
from repro.workloads import initially_dead_t, unanimous


class TestCOptUnit:
    def test_unanimous_round_one_decision(self):
        run = run_rs(
            COptFloodSet(), unanimous(3, 5), FailureScenario.failure_free(3),
            t=1,
        )
        assert all(run.decision_round(p) == 1 for p in range(3))
        assert run.decided_values() == {5}

    def test_mixed_values_defer_to_round_t_plus_one(self):
        run = run_rs(
            COptFloodSet(), [0, 1, 1], FailureScenario.failure_free(3), t=1
        )
        assert all(run.decision_round(p) == 2 for p in range(3))

    def test_missing_message_disables_fast_path(self):
        scenario = FailureScenario.initially_dead_set(3, {0})
        run = run_rs(COptFloodSet(), unanimous(3, 4), scenario, t=1)
        assert run.decision_round(1) == 2  # only n-1 messages at round 1


class TestCOptLatency:
    def test_lat_is_one_in_rs(self):
        profile = latency_profile(COptFloodSet(), 3, 1, RoundModel.RS)
        assert profile.lat == 1

    def test_lat_is_one_in_rws(self):
        profile = latency_profile(COptFloodSetWS(), 3, 1, RoundModel.RWS)
        assert profile.lat == 1

    def test_Lat_is_still_two(self):
        # The fast path needs unanimity; the worst configuration pays 2.
        profile = latency_profile(COptFloodSetWS(), 3, 1, RoundModel.RWS)
        assert profile.Lat == 2

    def test_safety(self):
        assert verify_algorithm(COptFloodSet(), 3, 1, RoundModel.RS).ok
        assert verify_algorithm(COptFloodSetWS(), 3, 1, RoundModel.RWS).ok

    def test_plain_copt_unsafe_in_rws(self):
        # Without the halt guard, the FloodSet weakness persists.
        report = verify_algorithm(
            COptFloodSet(), 3, 1, RoundModel.RWS, stop_after=1
        )
        assert not report.ok


class TestFOptUnit:
    def test_fast_path_on_exactly_n_minus_t(self):
        scenario = initially_dead_t(3, 1)
        run = run_rs(FOptFloodSet(), [1, 0, 1], scenario, t=1)
        # p2 is dead; p0 and p1 each hear exactly 2 = n - t messages.
        assert run.decision_round(0) == 1
        assert run.decision_round(1) == 1
        assert run.decided_values() == {0}

    def test_no_fast_path_when_all_alive(self):
        run = run_rs(
            FOptFloodSet(), [1, 0, 1], FailureScenario.failure_free(3), t=1
        )
        assert all(run.decision_round(p) == 2 for p in range(3))

    def test_forced_decision_propagates(self):
        """A fast decider forces its value via (D, v) at round 2."""
        from repro.rounds import CrashEvent

        # p2 crashes in round 1 reaching only p0: p0 hears 3... no —
        # p0 hears {0, 1, 2} = 3 != n-t; p1 hears {0, 1} = 2 = n-t.
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=2, round=1, sent_to=frozenset({0})),)
        )
        run = run_rs(FOptFloodSet(), [1, 1, 0], scenario, t=1)
        assert run.decision_round(1) == 1
        # p1 never saw p2's 0, decides min{1,1} = 1 and forces it on p0,
        # who DID see the 0 — the forced decision must win for agreement.
        assert run.decision_value(1) == 1
        assert run.decision_value(0) == 1
        assert check_uniform_consensus_run(run) == []

    def test_decided_processes_flood_reports(self):
        algorithm = FOptFloodSet()
        state = algorithm.initial_state(0, 3, 1, 1)
        state = algorithm.transition(
            0, state, {0: frozenset({1}), 1: frozenset({0})}
        )
        assert state.decided
        payloads = set(algorithm.messages(0, state).values())
        assert payloads == {("D", 0)}


class TestFOptTheorem51:
    """Theorem 5.1: both variants solve uniform consensus."""

    def test_rs_safety(self):
        report = verify_algorithm(FOptFloodSet(), 3, 1, RoundModel.RS)
        assert report.ok, report.first_violations()

    def test_rws_safety(self):
        report = verify_algorithm(FOptFloodSetWS(), 3, 1, RoundModel.RWS)
        assert report.ok, report.first_violations()

    def test_Lat_is_one_in_both_models(self):
        rs = latency_profile(FOptFloodSet(), 3, 1, RoundModel.RS)
        rws = latency_profile(FOptFloodSetWS(), 3, 1, RoundModel.RWS)
        assert rs.Lat == 1
        assert rws.Lat == 1

    def test_failure_free_runs_still_need_two_rounds(self):
        """The paper's paradox: failures *help* F_Opt."""
        rs = latency_profile(FOptFloodSet(), 3, 1, RoundModel.RS)
        assert rs.Lambda == 2
        assert rs.Lat_by_failures[1] == 2
        # Lat(A) = 1 comes from the t-initial-crash run of each config.
        assert all(v == 1 for v in rs.lat_by_config.values())


class TestFOptWSHalt:
    def test_halt_filters_late_senders(self):
        algorithm = FOptFloodSetWS()
        state = algorithm.initial_state(0, 3, 1, 1)
        # Round 1: p2 silent -> halted (and fast path fires on 2 = n-t).
        state = algorithm.transition(
            0, state, {0: frozenset({1}), 1: frozenset({1})}
        )
        assert 2 in state.halt
        assert state.decided
