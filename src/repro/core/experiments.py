"""The experiment registry: every paper claim as a runnable check.

Each experiment function reproduces one artefact of the paper (a
figure's algorithm, a theorem, a latency equality) and returns an
:class:`ExperimentResult` with the claim, the measurement, and a pass
verdict.  DESIGN.md's experiment index documents the mapping; the
benchmark suite times the same functions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import (
    latency_profile,
    latency_summary_table,
    format_table,
    profile_and_verify,
    refute_round_one_decision,
    verify_algorithm,
)
from repro.commit import (
    check_nbac_run,
    compare_commit_rates,
)
from repro.commit.algorithms import OptimisticFDCommit
from repro.consensus import (
    A1,
    COptFloodSet,
    COptFloodSetWS,
    EagerFloodSetWS,
    EarlyDecidingConsensus,
    EarlyDecidingUniformFloodSet,
    FloodSet,
    FloodSetWS,
    FOptFloodSet,
    FOptFloodSetWS,
    check_consensus_run,
    check_uniform_consensus_run,
)
from repro.consensus.candidates import ROUND_ONE_CANDIDATES
from repro.emulation import (
    check_emulated_round_synchrony,
    check_emulated_weak_round_synchrony,
    count_pending_messages,
    emulate_rs_on_ss,
    emulate_rws_on_sp,
    round_deadlines,
)
from repro.failures import (
    FailurePattern,
    TimeoutPerfectDetector,
    classify_history,
    detection_delays,
    detection_threshold,
    history_from_run,
    random_pattern,
)
from repro.models import SynchronousModel
from repro.rounds import RoundModel, run_rws
from repro.sdd import (
    SP_CANDIDATE_FACTORIES,
    check_sdd_run,
    refute_sdd_candidate,
    solve_sdd_ss,
)
from repro.workloads import a1_rws_disagreement, adversarial_split


@dataclass
class ExperimentResult:
    """Paper claim vs measured outcome for one experiment."""

    exp_id: str
    title: str
    paper_claim: str
    measured: str
    ok: bool
    details: list[str] = field(default_factory=list)

    def describe(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"[{self.exp_id}] {self.title} — {verdict}",
            f"  paper:    {self.paper_claim}",
            f"  measured: {self.measured}",
        ]
        lines.extend(f"  {line}" for line in self.details)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# E1 / E2 / E3 — solvability: SDD and atomic commit
# ---------------------------------------------------------------------------


def experiment_e1(quick: bool = True) -> ExperimentResult:
    """SDD is solvable in SS within Φ+1+Δ receiver steps."""
    seeds = 25 if quick else 200
    runs = 0
    failures: list[str] = []
    for seed in range(seeds):
        rng = random.Random(seed)
        for value in (0, 1):
            for phi, delta in ((1, 1), (2, 3)):
                for crashes in ({}, {0: 0}, {0: 1}, {0: rng.randint(1, 5)}):
                    pattern = FailurePattern.with_crashes(2, dict(crashes))
                    run = solve_sdd_ss(
                        value, pattern, phi=phi, delta=delta, rng=rng
                    )
                    verdict = check_sdd_run(run, value)
                    runs += 1
                    if not verdict.ok:
                        failures.append(verdict.describe())
    return ExperimentResult(
        exp_id="E1",
        title="SDD solvable in SS",
        paper_claim="p_j decides within Φ+1+Δ steps; validity whenever p_i "
        "was not initially crashed",
        measured=f"{runs} randomized SS runs, {len(failures)} violations",
        ok=not failures,
        details=failures[:3],
    )


def experiment_e2(quick: bool = True) -> ExperimentResult:
    """Theorem 3.1: every SP candidate falls to the run quadruple."""
    refutations = [
        refute_sdd_candidate(factory, name)
        for name, factory in SP_CANDIDATE_FACTORIES.items()
    ]
    all_refuted = all(r.refuted for r in refutations)
    return ExperimentResult(
        exp_id="E2",
        title="SDD unsolvable in SP (Theorem 3.1)",
        paper_claim="no algorithm solves SDD in SP tolerating one crash",
        measured=f"{len(refutations)} candidate receivers, all refuted: "
        f"{all_refuted}",
        ok=all_refuted,
        details=[r.describe().splitlines()[-1].strip() + f" ({r.candidate})"
                 for r in refutations],
    )


def experiment_e3(quick: bool = True) -> ExperimentResult:
    """Synchronous commit decides COMMIT strictly more often."""
    reports = compare_commit_rates(n=3, t=1)
    sync = reports["SyncCommit@RS"]
    safe = reports["P-Commit@RWS"]
    optimistic_safety = verify_algorithm(
        OptimisticFDCommit(),
        3,
        1,
        RoundModel.RWS,
        checker=check_nbac_run,
        domain=(False, True),
        stop_after=1,
    )
    gap_ok = sync.commit_rate > safe.commit_rate and sync.safe and safe.safe
    demo_ok = not optimistic_safety.ok  # the optimistic rule must break
    return ExperimentResult(
        exp_id="E3",
        title="Atomic commit: SS commits more often than SP",
        paper_claim="SS commit algorithms lead to COMMIT more often; the "
        "optimistic rule is unachievable in SP",
        measured=(
            f"all-YES commit rate: SyncCommit@RS {sync.commit_rate:.0%} vs "
            f"P-Commit@RWS {safe.commit_rate:.0%}; optimistic rule in RWS "
            f"violates commit validity: {not optimistic_safety.ok}"
        ),
        ok=gap_ok and demo_ok,
        details=[report.describe() for report in reports.values()],
    )


# ---------------------------------------------------------------------------
# E4–E9 — the algorithms of Figures 1–4
# ---------------------------------------------------------------------------


def experiment_e4(quick: bool = True) -> ExperimentResult:
    """FloodSet solves uniform consensus in RS in exactly t+1 rounds."""
    details: list[str] = []
    ok = True
    sweeps = [(3, 1), (4, 2)] if quick else [(3, 1), (4, 2), (4, 3), (5, 2)]
    for n, t in sweeps:
        profile, report = profile_and_verify(FloodSet(), n, t, RoundModel.RS)
        expected = t + 1
        case_ok = (
            report.ok and profile.Lat == expected and profile.lat == expected
        )
        ok = ok and case_ok
        details.append(
            f"n={n}, t={t}: safe={report.ok}, Lat={profile.Lat} "
            f"(expected {expected}), runs={profile.runs_explored}"
        )
    return ExperimentResult(
        exp_id="E4",
        title="FloodSet in RS (Figure 1)",
        paper_claim="uniform consensus in t+1 rounds, all runs",
        measured="; ".join(details),
        ok=ok,
    )


def experiment_e5(quick: bool = True) -> ExperimentResult:
    """Pending messages break FloodSet in RWS; FloodSetWS repairs it."""
    broken = verify_algorithm(
        FloodSet(), 3, 1, RoundModel.RWS, stop_after=1
    )
    fixed = verify_algorithm(FloodSetWS(), 3, 1, RoundModel.RWS)
    ok = (not broken.ok) and fixed.ok
    details = []
    if broken.violations:
        details.append("FloodSet counterexample: " + str(broken.violations[0]))
    details.append(fixed.describe())
    return ExperimentResult(
        exp_id="E5",
        title="FloodSetWS in RWS (Figure 2)",
        paper_claim="FloodSet allows disagreement in RWS; FloodSetWS solves "
        "uniform consensus in RWS",
        measured=f"FloodSet violated: {not broken.ok}; FloodSetWS safe over "
        f"{fixed.runs_checked} runs: {fixed.ok}",
        ok=ok,
        details=details,
    )


def experiment_e6(quick: bool = True) -> ExperimentResult:
    """lat(C_OptFloodSet) = lat(C_OptFloodSetWS) = 1."""
    rs = latency_profile(COptFloodSet(), 3, 1, RoundModel.RS)
    rws = latency_profile(COptFloodSetWS(), 3, 1, RoundModel.RWS)
    safe_rs = verify_algorithm(COptFloodSet(), 3, 1, RoundModel.RS)
    safe_rws = verify_algorithm(COptFloodSetWS(), 3, 1, RoundModel.RWS)
    ok = (
        rs.lat == 1
        and rws.lat == 1
        and safe_rs.ok
        and safe_rws.ok
    )
    return ExperimentResult(
        exp_id="E6",
        title="Unanimity fast path (Section 5.2)",
        paper_claim="lat(C_OptFloodSet) = lat(C_OptFloodSetWS) = 1",
        measured=f"lat RS={rs.lat}, lat RWS={rws.lat}; both safe: "
        f"{safe_rs.ok and safe_rws.ok}",
        ok=ok,
        details=[rs.describe(), rws.describe()],
    )


def experiment_e7(quick: bool = True) -> ExperimentResult:
    """Theorem 5.1 + Lat(F_Opt*) = 1 via t initial crashes."""
    rs = latency_profile(FOptFloodSet(), 3, 1, RoundModel.RS)
    rws = latency_profile(FOptFloodSetWS(), 3, 1, RoundModel.RWS)
    safe_rs = verify_algorithm(FOptFloodSet(), 3, 1, RoundModel.RS)
    safe_rws = verify_algorithm(FOptFloodSetWS(), 3, 1, RoundModel.RWS)
    ok = (
        rs.Lat == 1
        and rws.Lat == 1
        and safe_rs.ok
        and safe_rws.ok
        and rs.Lambda == 2  # failure-free runs still need 2 rounds
    )
    return ExperimentResult(
        exp_id="E7",
        title="F_OptFloodSet (Figure 3, Theorem 5.1)",
        paper_claim="both solve uniform consensus; Lat = 1 (t initial "
        "crashes beat failure-free runs)",
        measured=f"Lat RS={rs.Lat}, Lat RWS={rws.Lat}, Λ RS={rs.Lambda}; "
        f"safe: {safe_rs.ok and safe_rws.ok}",
        ok=ok,
        details=[rs.describe(), rws.describe()],
    )


def experiment_e8(quick: bool = True) -> ExperimentResult:
    """Theorem 5.2: A1 solves uniform consensus in RS with Λ = 1."""
    sweeps = [3] if quick else [2, 3, 4]
    ok = True
    details = []
    for n in sweeps:
        report = verify_algorithm(A1(), n, 1, RoundModel.RS)
        profile = latency_profile(A1(), n, 1, RoundModel.RS)
        case_ok = report.ok and profile.Lambda == 1 and profile.Lat == 1
        ok = ok and case_ok
        details.append(
            f"n={n}: safe={report.ok}, Λ={profile.Lambda}, Lat={profile.Lat}, "
            f"Lat(A,1)={profile.Lat_by_failures[1]}"
        )
    return ExperimentResult(
        exp_id="E8",
        title="A1 in RS (Figure 4, Theorem 5.2)",
        paper_claim="A1 tolerates one crash, solves uniform consensus in "
        "RS; every failure-free run decides at round 1 (Λ(A1) = 1)",
        measured="; ".join(details),
        ok=ok,
    )


def experiment_e9(quick: bool = True) -> ExperimentResult:
    """The Section 5.3 disagreement scenario defeats A1 in RWS."""
    values = adversarial_split(3)
    run = run_rws(A1(), values, a1_rws_disagreement(3), t=1)
    violations = check_uniform_consensus_run(run)
    named_ok = bool(violations)
    enumerated = verify_algorithm(A1(), 3, 1, RoundModel.RWS)
    return ExperimentResult(
        exp_id="E9",
        title="A1 is not uniform in RWS (Section 5.3 scenario)",
        paper_claim="p1 broadcasts, decides v1 and crashes with all "
        "messages pending; the others decide v2",
        measured=(
            f"named scenario violates uniform agreement: {named_ok} "
            f"(decisions: {dict(run.decisions)}); enumeration finds "
            f"{len(enumerated.violations)} violating runs of "
            f"{enumerated.runs_checked}"
        ),
        ok=named_ok and not enumerated.ok,
        details=[str(v) for v in violations[:2]],
    )


# ---------------------------------------------------------------------------
# E10 — the Λ >= 2 lower bound in RWS
# ---------------------------------------------------------------------------


def experiment_e10(quick: bool = True) -> ExperimentResult:
    """Every round-1-deciding RWS candidate is refuted; safe ones have Λ>=2."""
    verdicts = [
        refute_round_one_decision(candidate, 3, 1)
        for candidate in ROUND_ONE_CANDIDATES
    ]
    survey_ok = all(
        verdict.refuted or not verdict.has_round_one_property
        for verdict in verdicts
    )
    lambdas = {}
    for algorithm in (FloodSetWS(), COptFloodSetWS(), FOptFloodSetWS()):
        profile = latency_profile(algorithm, 3, 1, RoundModel.RWS)
        lambdas[algorithm.name] = profile.Lambda
    lambda_ok = all(value >= 2 for value in lambdas.values())
    a1_rs = latency_profile(A1(), 3, 1, RoundModel.RS).Lambda
    return ExperimentResult(
        exp_id="E10",
        title="Λ >= 2 in RWS vs Λ(A1) = 1 in RS",
        paper_claim="for n >= 3 no RWS uniform consensus algorithm decides "
        "at round 1 of all failure-free runs; hence Λ >= 2 in RWS",
        measured=(
            f"{len(verdicts)} round-1 candidates all refuted: {survey_ok}; "
            f"Λ of safe RWS algorithms {lambdas} (all >= 2: {lambda_ok}); "
            f"Λ(A1, RS) = {a1_rs}"
        ),
        ok=survey_ok and lambda_ok and a1_rs == 1,
        details=[verdict.describe() for verdict in verdicts],
    )


# ---------------------------------------------------------------------------
# E11 / E12 / E13 — emulations and the timeout detector
# ---------------------------------------------------------------------------


def experiment_e11(quick: bool = True) -> ExperimentResult:
    """RS on SS: round synchrony holds on every emulated run."""
    seeds = 8 if quick else 40
    violations = 0
    runs = 0
    mismatches = 0
    for seed in range(seeds):
        rng = random.Random(seed)
        pattern = random_pattern(3, 1, 30, rng)
        trace = emulate_rs_on_ss(
            FloodSet(),
            adversarial_split(3),
            pattern,
            t=1,
            phi=1,
            delta=1,
            num_rounds=2,
            rng=rng,
        )
        runs += 1
        violations += len(check_emulated_round_synchrony(trace))
        decided = {
            trace.decisions[pid][1]
            for pid in pattern.correct
            if trace.decisions[pid] is not None
        }
        if len(decided) > 1:
            mismatches += 1
    deadlines = {
        f"Φ={phi},Δ={delta}": round_deadlines(3, phi, delta, 3)
        for phi, delta in ((1, 1), (2, 2))
    }
    return ExperimentResult(
        exp_id="E11",
        title="RS emulated on SS (Section 4.1)",
        paper_claim="each round costs n+k steps (k a function of n, Δ, Φ, "
        "r) and round synchrony holds",
        measured=f"{runs} emulated runs: {violations} round-synchrony "
        f"violations, {mismatches} agreement mismatches; per-round "
        f"step deadlines {deadlines}",
        ok=violations == 0 and mismatches == 0,
    )


def experiment_e12(quick: bool = True) -> ExperimentResult:
    """RWS on SP: Lemma 4.1 holds, non-vacuously."""
    seeds = 25 if quick else 120
    violations = 0
    pending_total = 0
    runs = 0
    for seed in range(seeds):
        rng = random.Random(seed)
        pattern = FailurePattern.with_crashes(3, {0: rng.randint(3, 15)})
        trace = emulate_rws_on_sp(
            FloodSetWS(),
            adversarial_split(3),
            pattern,
            t=1,
            num_rounds=2,
            rng=rng,
            max_detection_delay=2,
            delivery_prob=0.15,
            max_age=80,
        )
        runs += 1
        violations += len(check_emulated_weak_round_synchrony(trace))
        pending_total += count_pending_messages(trace)
    return ExperimentResult(
        exp_id="E12",
        title="RWS emulated on SP (Lemma 4.1)",
        paper_claim="the receive-until-received-or-suspected emulation "
        "guarantees weak round synchrony",
        measured=f"{runs} emulated SP runs: {violations} weak-round-"
        f"synchrony violations; {pending_total} pending messages observed "
        "(lemma checked non-vacuously)",
        ok=violations == 0 and pending_total > 0,
    )


def experiment_e13(quick: bool = True) -> ExperimentResult:
    """Timeouts implement P on SS, within the Φ/Δ-derived bound."""
    seeds = 10 if quick else 50
    n, phi, delta = 3, 2, 2
    threshold = detection_threshold(n, phi, delta)
    bad_class = 0
    max_delay = 0
    runs = 0
    for seed in range(seeds):
        rng = random.Random(seed)
        pattern = FailurePattern.with_crashes(n, {1: rng.randint(5, 60)})
        model = SynchronousModel(phi=phi, delta=delta)
        executor = model.executor(
            TimeoutPerfectDetector(n, phi, delta),
            n,
            pattern,
            rng=rng,
            record_states=True,
        )
        run = executor.execute(450)
        runs += 1
        history = history_from_run(run)
        report = classify_history(history, pattern, len(run.schedule) - 1)
        if not report.matches_class("P"):
            bad_class += 1
        for delay in detection_delays(run).values():
            if delay is not None:
                max_delay = max(max_delay, delay)
    # A heartbeat already in flight at the crash can refresh the silence
    # counter up to Δ observer steps after the crash, so detection takes
    # at most threshold + Δ + 1 observer steps.
    bound = threshold + delta + 1
    return ExperimentResult(
        exp_id="E13",
        title="P from timeouts on SS (Section 3 opening)",
        paper_claim="time-outs depending on Φ and Δ implement a perfect "
        "failure detector in SS, with a bounded detection delay",
        measured=f"{runs} SS runs: {bad_class} axiom failures; max observed "
        f"detection delay {max_delay} observer steps "
        f"(bound (n-1)(Φ+1)+2Δ+1 = {bound})",
        ok=bad_class == 0 and max_delay <= bound,
    )


# ---------------------------------------------------------------------------
# E14 / E15 — the uniform gap and the headline table
# ---------------------------------------------------------------------------


def experiment_e14(quick: bool = True) -> ExperimentResult:
    """Consensus and uniform consensus genuinely differ in RS and RWS."""
    # RWS witness (t = 1): the eager FloodSetWS variant solves plain
    # consensus but a decide-then-crash run breaks uniform agreement.
    eager_consensus = verify_algorithm(
        EagerFloodSetWS(), 3, 1, RoundModel.RWS, checker=check_consensus_run
    )
    eager_uniform = verify_algorithm(
        EagerFloodSetWS(), 3, 1, RoundModel.RWS, stop_after=1
    )
    # RS witness (t = 2): early-deciding consensus is non-uniform.
    early_consensus = verify_algorithm(
        EarlyDecidingConsensus(), 4, 2, RoundModel.RS,
        checker=check_consensus_run, horizon=5,
    )
    early_uniform = verify_algorithm(
        EarlyDecidingConsensus(), 4, 2, RoundModel.RS, stop_after=1,
        horizon=5,
    )
    uniform_fix = verify_algorithm(
        EarlyDecidingUniformFloodSet(), 4, 2, RoundModel.RS, horizon=6,
    )
    ok = (
        eager_consensus.ok
        and not eager_uniform.ok
        and early_consensus.ok
        and not early_uniform.ok
        and uniform_fix.ok
    )
    return ExperimentResult(
        exp_id="E14",
        title="Consensus vs uniform consensus gap (Section 5.1)",
        paper_claim="in RS and RWS, solving consensus does not imply "
        "solving uniform consensus",
        measured=(
            f"RWS(t=1): EagerFloodSetWS consensus-safe={eager_consensus.ok}, "
            f"uniform-safe={eager_uniform.ok}; RS(t=2): EarlyConsensus "
            f"consensus-safe={early_consensus.ok}, uniform-safe="
            f"{early_uniform.ok}; EarlyUniform uniform-safe={uniform_fix.ok}"
        ),
        ok=ok,
        details=(
            [str(v) for v in eager_uniform.violations[:1]]
            + [str(v) for v in early_uniform.violations[:1]]
        ),
    )


def experiment_e15(quick: bool = True) -> ExperimentResult:
    """The headline table: every algorithm × both models."""
    algorithms = [
        FloodSet(),
        FloodSetWS(),
        COptFloodSet(),
        COptFloodSetWS(),
        FOptFloodSet(),
        FOptFloodSetWS(),
        A1(),
    ]
    rows = latency_summary_table(algorithms, n=3, t=1)
    table = format_table(rows)
    by_key = {(row.algorithm, row.model): row for row in rows}
    ok = (
        by_key[("A1", "RS")].Lambda == 1
        and by_key[("A1", "RWS")].uniform_safe is False
        and by_key[("FloodSetWS", "RWS")].Lambda == 2
        and by_key[("FloodSet", "RWS")].uniform_safe is False
        and by_key[("F_OptFloodSet", "RS")].Lat == 1
        and by_key[("F_OptFloodSetWS", "RWS")].Lat == 1
    )
    return ExperimentResult(
        exp_id="E15",
        title="Headline summary: RS vs RWS",
        paper_claim="RS admits Λ = 1 (A1); every RWS algorithm has Λ >= 2; "
        "fast paths give lat = 1 / Lat = 1 in both",
        measured="see table",
        ok=ok,
        details=table.splitlines(),
    )


#: Registry of all experiments, keyed by id.
EXPERIMENTS: dict[str, Callable[[bool], ExperimentResult]] = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "E12": experiment_e12,
    "E13": experiment_e13,
    "E14": experiment_e14,
    "E15": experiment_e15,
}


def run_experiment(exp_id: str, quick: bool = True) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"E9"``)."""
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key](quick)


def _run_keyed(key_and_quick: tuple[str, bool]) -> ExperimentResult:
    """Pool-friendly wrapper: one (experiment id, quick) cell."""
    key, quick = key_and_quick
    return EXPERIMENTS[key](quick)


def run_all_experiments(
    quick: bool = True, jobs: int = 1
) -> list[ExperimentResult]:
    """Run the full E1–E15 suite in order.

    With ``jobs > 1`` the experiments fan out over a process pool
    (they are independent and internally seeded); results come back in
    suite order regardless of scheduling.
    """
    from repro.runtime.pool import parallel_map

    ordered = sorted(EXPERIMENTS, key=lambda k: int(k[1:]))
    return parallel_map(
        _run_keyed, [(key, quick) for key in ordered], jobs=jobs
    )
