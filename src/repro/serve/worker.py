"""The campaign worker: claim a shard, execute it, stream results back.

A worker is stateless by design — everything it needs arrives in the
shard grant (full serialized :class:`~repro.runtime.request.
ExecutionRequest` per cell), and everything it produces leaves in the
submit payload.  Killing a worker therefore loses nothing but its
current lease; the coordinator re-queues the shard when the lease
expires and another worker re-executes it, which the content-addressed
merge dedupes exactly.

Execution reuses the sweep path's worker entry point
(:func:`repro.runtime.sweep._execute_chunk`), so ``--engine vector``
cells batch through the columnar kernel and everything else takes the
classic per-cell path — the produced events and metrics are
byte-identical to a single-process ``repro sweep`` either way.  (Cell
profiles ride in ``extra`` and may differ across hosts; the
determinism contract covers events and metrics, never extras.  The
profiler used for span snapshots is process-global, so in-process test
workers on threads only ever contaminate telemetry, not traces.)
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Callable

from repro.runtime.pool import parallel_map
from repro.runtime.request import ExecutionRequest
from repro.runtime.sweep import _execute_chunk
from repro.serve.api import (
    CoordinatorUnreachable,
    ServeAPIError,
    ServeClient,
)


def default_worker_id() -> str:
    """``host-pid``: unique enough to attribute leases in ``/status``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def execute_shard(
    grant: dict[str, Any],
    *,
    jobs: int = 1,
    throttle_s: float = 0.0,
    on_cell: Callable[[str], None] | None = None,
) -> list[dict[str, Any]]:
    """Execute one shard grant; returns serialized results in cell order.

    Mirrors the sweep runner's chunking: vector-engine cells coalesce
    into ``jobs``-sized batch chunks for the columnar kernel, everything
    else runs as singleton chunks.  ``throttle_s`` sleeps between
    chunks — the fault-injection seam that makes "kill the worker
    mid-shard" deterministic in tests and smoke runs.
    """
    requests = [
        ExecutionRequest.from_dict(cell["request"])
        for cell in grant.get("cells", [])
    ]
    chunks: list[list[int]] = []
    vector_indices = [
        i for i, request in enumerate(requests) if request.engine == "vector"
    ]
    chunks.extend(
        [i] for i, request in enumerate(requests)
        if request.engine != "vector"
    )
    if vector_indices:
        size = -(-len(vector_indices) // max(1, jobs))
        chunks.extend(
            vector_indices[start : start + size]
            for start in range(0, len(vector_indices), size)
        )

    results: list[dict[str, Any] | None] = [None] * len(requests)
    chunk_iter = iter(chunks)

    def _arrived(batch: list[Any]) -> None:
        for index, result in zip(next(chunk_iter), batch):
            results[index] = result.to_dict()
            if on_cell is not None:
                on_cell(result.name)
        if throttle_s > 0:
            time.sleep(throttle_s)

    if jobs > 1:
        parallel_map(
            _execute_chunk,
            [[requests[i] for i in chunk] for chunk in chunks],
            jobs=jobs,
            on_result=_arrived,
        )
    else:
        for chunk in chunks:
            _arrived(_execute_chunk([requests[i] for i in chunk]))
    return [entry for entry in results if entry is not None]


def run_worker(
    connect: str,
    *,
    worker_id: str | None = None,
    jobs: int = 1,
    throttle_s: float = 0.0,
    max_shards: int | None = None,
    connect_timeout_s: float = 30.0,
    request_timeout_s: float = 120.0,
    on_cell: Callable[[str], None] | None = None,
    log: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """The worker loop: claim → execute → submit, until the run is done.

    Returns a stats dict (shards/cells executed, why the loop ended).
    A coordinator that is not up yet is retried for
    ``connect_timeout_s``; a coordinator that *disappears* mid-run ends
    the loop with ``"reason": "disconnected"`` — the work already
    submitted is safe on the coordinator's disk, and the shard in
    flight will be re-leased by whoever coordinates next.
    """
    client = ServeClient(connect, timeout_s=request_timeout_s)
    me = worker_id or default_worker_id()
    say = log or (lambda message: None)
    stats: dict[str, Any] = {
        "worker_id": me,
        "shards": 0,
        "cells": 0,
        "stale_submissions": 0,
        "reason": "done",
    }

    deadline = time.monotonic() + connect_timeout_s
    while True:
        try:
            grant = client.claim(me)
        except CoordinatorUnreachable as exc:
            if stats["shards"] == 0 and time.monotonic() < deadline:
                time.sleep(0.1)
                continue
            say(f"{me}: coordinator gone ({exc}); stopping")
            stats["reason"] = "disconnected"
            return stats
        except ServeAPIError as exc:
            say(f"{me}: coordinator rejected claim: {exc}")
            stats["reason"] = "rejected"
            return stats

        if grant.get("done"):
            say(f"{me}: campaign complete")
            return stats
        if grant.get("wait"):
            time.sleep(float(grant.get("retry_s", 0.25)))
            continue

        shard_id = grant["shard_id"]
        say(f"{me}: executing shard {shard_id} ({len(grant['cells'])} cells)")
        results = execute_shard(
            grant, jobs=jobs, throttle_s=throttle_s, on_cell=on_cell
        )
        payload = {
            "shard_id": shard_id,
            "lease_id": grant["lease_id"],
            "worker_id": me,
            "results": results,
        }
        try:
            receipt = client.submit(payload)
        except CoordinatorUnreachable as exc:
            say(f"{me}: coordinator gone mid-submit ({exc}); stopping")
            stats["reason"] = "disconnected"
            return stats
        except ServeAPIError as exc:
            # A rejected submit means *this worker* produced junk; that
            # is a bug worth crashing on, not retrying around.
            raise RuntimeError(
                f"coordinator rejected shard {shard_id} from {me}: {exc}"
            ) from exc
        stats["shards"] += 1
        stats["cells"] += int(receipt.get("accepted", 0))
        if receipt.get("stale"):
            stats["stale_submissions"] += 1
        if max_shards is not None and stats["shards"] >= max_shards:
            stats["reason"] = "max_shards"
            return stats
