"""Composable, seed-stable generators for fuzz cases.

Two layers share one vocabulary:

* **plain generators** (``generate_*``) — pure functions of a stream
  seed and a case index, built on :func:`repro.runtime.space.derived_seed`
  exactly like the registered random spaces.  They need nothing beyond
  the standard library, so the ``repro fuzz`` CLI works on a bare
  install.
* **Hypothesis strategies** (``failure_patterns``, ``failure_scenarios``,
  ``initial_values``, ``rounds_requests``) — the same structures as
  first-class strategies, so property tests get Hypothesis' shrinking
  and example database for free.  Hypothesis is an optional dependency;
  the strategy constructors raise a clear
  :class:`~repro.errors.ConfigurationError` when it is missing, and
  nothing else in :mod:`repro.fuzz` requires it.

Both layers promote the ad-hoc draws of
:func:`repro.failures.generators.random_pattern` and
:func:`repro.rounds.enumeration.random_scenario` into one place with
one admissibility story: every produced scenario passes
:func:`~repro.rounds.scenario.validate_scenario` for its model.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.failures.generators import random_pattern
from repro.failures.pattern import FailurePattern
from repro.rounds.enumeration import _pending_candidates, random_scenario
from repro.rounds.scenario import (
    CrashEvent,
    FailureScenario,
    validate_scenario,
)
from repro.runtime.request import ExecutionRequest
from repro.runtime.space import derived_seed

#: Engines the fuzzer targets by default.  ``rounds-rs``/``rounds-rws``
#: split the round executor by model so a campaign can round-robin all
#: four deterministic run semantics with one list.
FUZZ_ENGINES = ("rounds-rs", "rounds-rws", "rs_on_ss", "rws_on_sp")

#: The columnar kernel as a fuzz target (``--engine vector``), split by
#: round model like the object executor.  Opt-in rather than part of the
#: default round-robin: a vector case's replay oracle re-executes the
#: trace on the *object* engine, so every vector case is already a
#: built-in vector↔object differential.
VECTOR_FUZZ_ENGINES = ("vector-rs", "vector-rws")

#: The asyncio cluster runtime is a valid fuzz target too
#: (``--engine live``) but stays out of the default round-robin: its
#: runs are wall-clock nondeterministic, so it only joins a campaign
#: when asked for, and its cases are excluded from the byte-parity
#: sample.
LIVE_FUZZ_ENGINE = "live"

#: Algorithms that are *safe* under each run semantics: any consensus
#: violation in a generated case is a bug, never an expected outcome,
#: which is what lets the differential oracles assert agreement
#: unconditionally.  The live engine realizes RWS (its P-synchronizer
#: withholds only under the Lemma 4.1 bound), so its pool is the
#: WS-safe algorithms plus Chandra–Toueg, which the runtime hosts
#: natively on P.
SAFE_ALGORITHMS = {
    "rounds-rs": ("floodset", "c-opt", "f-opt", "a1"),
    "rounds-rws": ("floodset-ws", "c-opt-ws", "f-opt-ws"),
    "rs_on_ss": ("floodset", "c-opt", "f-opt", "a1"),
    "rws_on_sp": ("floodset-ws", "c-opt-ws", "f-opt-ws"),
    "live": ("floodset-ws", "c-opt-ws", "f-opt-ws", "chandra-toueg"),
    # The vector pools mirror the rounds pools: cells whose algorithm
    # has no plan kernel (c-opt, c-opt-ws) fall back to the object
    # executor, so the stream fuzzes the fallback seam too.
    "vector-rs": ("floodset", "c-opt", "f-opt", "a1"),
    "vector-rws": ("floodset-ws", "c-opt-ws", "f-opt-ws"),
}


def case_rng(seed: int, index: int) -> random.Random:
    """The deterministic RNG of case ``index`` in stream ``seed``.

    Identical to the derived-seed scheme of the registered random
    spaces: the case depends only on ``(seed, index)``, never on how
    many cases precede it or which worker executes it.
    """
    return random.Random(derived_seed(seed, index))


def generate_values(rng: random.Random, n: int) -> tuple[int, ...]:
    """A random binary initial configuration."""
    return tuple(rng.randint(0, 1) for _ in range(n))


def generate_pattern(
    rng: random.Random, n: int, max_failures: int, horizon: int
) -> FailurePattern:
    """A random step-time failure pattern (promoted ``random_pattern``)."""
    return random_pattern(n, max_failures, horizon, rng)


def generate_scenario(
    rng: random.Random,
    n: int,
    t: int,
    *,
    max_round: int,
    allow_pending: bool,
) -> FailureScenario:
    """A random admissible round-model scenario (promoted draw)."""
    return random_scenario(
        n, t, max_round=max_round, allow_pending=allow_pending, rng=rng
    )


def generate_case(
    index: int,
    *,
    seed: int,
    engine: str,
    max_n: int = 4,
) -> ExecutionRequest:
    """Case ``index`` of the fuzz stream ``seed`` for one engine.

    The request is self-describing (engine, algorithm, adversary, seed,
    knobs), so a failing case round-trips through JSON into a repro
    file and back without any ambient state.
    """
    if engine not in FUZZ_ENGINES + VECTOR_FUZZ_ENGINES + (LIVE_FUZZ_ENGINE,):
        raise ConfigurationError(
            f"unknown fuzz engine {engine!r}; choose from "
            f"{FUZZ_ENGINES + VECTOR_FUZZ_ENGINES + (LIVE_FUZZ_ENGINE,)}"
        )
    rng = case_rng(seed, index)
    n = rng.randint(3, max(3, max_n))
    t = rng.randint(1, min(2, n - 1))
    pool = SAFE_ALGORITHMS[engine]
    if t != 1:
        # A1 is defined for exactly one tolerated crash.
        pool = tuple(a for a in pool if a != "a1")
    if n <= 2 * t:
        # Chandra–Toueg's rotating coordinator needs a correct majority.
        pool = tuple(a for a in pool if a != "chandra-toueg")
    algorithm = rng.choice(pool)
    values = generate_values(rng, n)
    max_rounds = t + 2
    name = f"fuzz-{engine}-{seed}-{index:04d}"
    if engine in ("rounds-rs", "rounds-rws") + VECTOR_FUZZ_ENGINES:
        model = "RS" if engine.endswith("-rs") else "RWS"
        scenario = generate_scenario(
            rng,
            n,
            t,
            max_round=max_rounds - 1,
            allow_pending=(model == "RWS"),
        )
        return ExecutionRequest(
            name=name,
            engine="vector" if engine in VECTOR_FUZZ_ENGINES else "rounds",
            algorithm=algorithm,
            values=values,
            t=t,
            model=model,
            scenario=scenario,
            max_rounds=max_rounds,
        )
    if engine == "rs_on_ss":
        phi = rng.choice((1, 2))
        delta = rng.choice((1, 2))
        # Keep crash times within the emulation's active span so most
        # cases exercise mid-round crashes rather than post-run ones.
        horizon = 8 * n * max_rounds * phi
        pattern = generate_pattern(rng, n, t, horizon)
        return ExecutionRequest(
            name=name,
            engine="rs_on_ss",
            algorithm=algorithm,
            values=values,
            t=t,
            pattern=pattern,
            max_rounds=max_rounds,
            seed=rng.getrandbits(31),
            params=(("delta", delta), ("phi", phi)),
            check_consensus=False,
        )
    if engine == LIVE_FUZZ_ENGINE:
        # Crash times are centiseconds of wall clock on the live engine;
        # a horizon of 10 puts every crash inside the first ~100 ms, the
        # span a small cluster is actually exchanging rounds in.  The
        # pool is RWS-safe, so consensus is asserted unconditionally.
        pattern = generate_pattern(rng, n, t, 10)
        return ExecutionRequest(
            name=name,
            engine="live",
            algorithm=algorithm,
            values=values,
            t=t,
            pattern=pattern,
            max_rounds=max_rounds,
            seed=rng.getrandbits(31),
            params=(
                ("detector", rng.choice(("p", "ep"))),
                ("net_profile", rng.choice(("lan", "lossy", "adversarial"))),
            ),
        )
    pattern = generate_pattern(rng, n, t, 12 * n)
    # The SP emulation's round-completion rule waits for every alive
    # peer's message; the algorithms stop sending after round t + 1
    # (they have decided), so more rounds would deadlock the rule.
    return ExecutionRequest(
        name=name,
        engine="rws_on_sp",
        algorithm=algorithm,
        values=values,
        t=t,
        pattern=pattern,
        max_rounds=t + 1,
        seed=rng.getrandbits(31),
        params=(
            ("delivery_prob", rng.choice((0.1, 0.2, 0.3))),
            ("max_age", 80),
            ("max_detection_delay", 2),
        ),
        check_consensus=False,
    )


def fuzz_stream_space(
    *,
    budget: int,
    seed: int,
    engines: Sequence[str] = FUZZ_ENGINES,
    max_n: int = 4,
    name: str | None = None,
) -> "ScenarioSpace":
    """A fuzz stream reified as a :class:`~repro.runtime.space.ScenarioSpace`.

    Cases round-robin the engine list exactly as the ``repro fuzz``
    campaign does, and every cell's content depends only on
    ``(seed, index, engine)`` — so the same stream sharded over a
    ``repro serve`` fabric produces the same cells (and cache keys) as
    a local run.  This is what "campaign-over-serve" means: a fuzz
    budget becomes an ordinary space the coordinator can shard, lease,
    and merge with its usual resume guarantees.
    """
    from repro.runtime.space import ScenarioSpace

    engines = tuple(engines)
    if not engines:
        raise ConfigurationError("fuzz_stream_space needs at least one engine")
    requests = tuple(
        generate_case(
            index,
            seed=seed,
            engine=engines[index % len(engines)],
            max_n=max_n,
        )
        for index in range(budget)
    )
    return ScenarioSpace(
        name=name or f"fuzz-stream-{seed}", requests=requests
    )


# ---------------------------------------------------------------------------
# The mc-frontier stream: fuzzing from deep reachable states
# ---------------------------------------------------------------------------


def mc_frontier_case(
    index: int,
    *,
    seed: int,
    exploration: Any,
    extra_rounds: int = 2,
) -> ExecutionRequest:
    """Case ``index`` of a fuzz stream seeded from a checker frontier.

    Random generation reaches deep states with vanishing probability;
    the model checker's saved frontier is a census of *every* reachable
    leaf of its bounded instance.  Each case re-executes one leaf —
    drawn by the usual ``(seed, index)`` scheme — with a fuzzed engine
    choice (``rounds`` vs ``vector``, so every case doubles as a
    columnar differential) and a horizon extended by up to
    ``extra_rounds``, probing behaviour *past* the explored bound from
    an exactly-known deep state.
    """
    leaves = exploration.leaves
    if not leaves:
        raise ConfigurationError(
            "cannot fuzz from an empty frontier (no leaves)"
        )
    rng = case_rng(seed, index)
    leaf = leaves[rng.randrange(len(leaves))]
    engine = rng.choice(("rounds", "vector"))
    horizon = exploration.horizon + rng.randint(0, max(0, extra_rounds))
    # Consensus is only an oracle where the algorithm is safe for the
    # frontier's model — a frontier of a REFUTED instance (e.g. plain
    # FloodSet under RWS) has expected disagreements, not bugs.
    pool_key = f"rounds-{exploration.model.lower()}"
    safe = exploration.algorithm in SAFE_ALGORITHMS.get(pool_key, ())
    return ExecutionRequest(
        name=f"mc-frontier-{seed}-{index:04d}",
        engine=engine,
        algorithm=exploration.algorithm,
        values=leaf.values,
        t=exploration.t,
        model=exploration.model,
        scenario=leaf.scenario,
        max_rounds=horizon,
        check_consensus=safe,
    )


def mc_frontier_cases(
    budget: int,
    seed: int,
    frontier: Any,
    *,
    extra_rounds: int = 2,
) -> tuple[ExecutionRequest, ...]:
    """``budget`` cases sampled from ``frontier`` (path or Exploration)."""
    if isinstance(frontier, (str, bytes)) or hasattr(frontier, "__fspath__"):
        from repro.mc.space import load_frontier

        frontier = load_frontier(frontier)
    return tuple(
        mc_frontier_case(
            index, seed=seed, exploration=frontier, extra_rounds=extra_rounds
        )
        for index in range(budget)
    )


def mc_frontier_space(
    *,
    budget: int,
    seed: int,
    frontier: Any,
    extra_rounds: int = 2,
    name: str | None = None,
) -> "ScenarioSpace":
    """The mc-frontier stream as a shardable scenario space."""
    from repro.runtime.space import ScenarioSpace

    return ScenarioSpace(
        name=name or f"mc-frontier-{seed}",
        requests=mc_frontier_cases(
            budget, seed, frontier, extra_rounds=extra_rounds
        ),
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies (optional dependency)
# ---------------------------------------------------------------------------


def _strategies():
    """Import ``hypothesis.strategies`` or explain how to get it."""
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - exercised without dep
        raise ConfigurationError(
            "hypothesis is not installed; the repro.fuzz strategy "
            "constructors need it (the plain generate_* helpers and the "
            "`repro fuzz` CLI do not)"
        ) from exc
    return st


def initial_values(n: int, domain: Sequence[Any] = (0, 1)):
    """Strategy: an initial configuration of ``n`` values over ``domain``."""
    st = _strategies()
    return st.lists(
        st.sampled_from(tuple(domain)), min_size=n, max_size=n
    ).map(tuple)


def failure_patterns(*, n: int = 4, max_failures: int | None = None, horizon: int = 40):
    """Strategy: step-time crash patterns with at most ``max_failures``.

    Shrinks toward the crash-free pattern (fewer victims) and toward
    time 0 (earlier crashes), which is exactly the minimality order the
    campaign shrinker uses.
    """
    st = _strategies()
    limit = n - 1 if max_failures is None else min(max_failures, n - 1)
    return st.dictionaries(
        keys=st.integers(0, n - 1),
        values=st.integers(0, horizon),
        max_size=limit,
    ).map(lambda crashes: FailurePattern.with_crashes(n, crashes))


def crash_events(pid: int, *, n: int, max_round: int):
    """Strategy: one admissible :class:`CrashEvent` for process ``pid``."""
    st = _strategies()
    others = tuple(q for q in range(n) if q != pid)

    def build(round_index: int, sent_mask: int, applies: bool) -> CrashEvent:
        sent_to = frozenset(
            q for bit, q in enumerate(others) if (sent_mask >> bit) & 1
        )
        # A transition needs the full send to have completed.
        if sent_to != frozenset(others):
            applies = False
        return CrashEvent(
            pid=pid,
            round=round_index,
            sent_to=sent_to,
            applies_transition=applies,
        )

    return st.builds(
        build,
        st.integers(1, max_round),
        st.integers(0, 2 ** len(others) - 1),
        st.booleans(),
    )


def failure_scenarios(
    *,
    n: int = 4,
    t: int = 1,
    max_round: int = 3,
    allow_pending: bool = False,
):
    """Strategy: admissible round-model scenarios for one model.

    Every example passes
    :func:`~repro.rounds.scenario.validate_scenario` with the given
    ``t`` and ``allow_pending``; the pending set is drawn from the same
    weak-round-synchrony candidate list the exhaustive enumeration
    uses.  Shrinks toward failure-free.
    """
    st = _strategies()

    @st.composite
    def scenarios(draw) -> FailureScenario:
        victims = draw(
            st.lists(
                st.integers(0, n - 1),
                unique=True,
                max_size=min(t, n - 1),
            )
        )
        events = tuple(
            draw(crash_events(pid, n=n, max_round=max_round))
            for pid in sorted(victims)
        )
        pending: frozenset = frozenset()
        if allow_pending and events:
            candidates = _pending_candidates(n, events, max_round)
            if candidates:
                mask = draw(st.integers(0, 2 ** len(candidates) - 1))
                pending = frozenset(
                    c for bit, c in enumerate(candidates) if (mask >> bit) & 1
                )
        scenario = FailureScenario(n=n, crashes=events, pending=pending)
        if validate_scenario(scenario, t=t, allow_pending=allow_pending):
            # Rare inconsistent pending combination: keep the crashes,
            # drop the pending set (mirrors random_scenario).
            scenario = FailureScenario(n=n, crashes=events)
        return scenario

    return scenarios()


def rounds_requests(
    *,
    model: str = "RS",
    n: int = 4,
    t: int = 1,
    max_rounds: int = 4,
    algorithms: Sequence[str] | None = None,
):
    """Strategy: complete rounds-engine requests for safe algorithms."""
    st = _strategies()
    engine = "rounds-rs" if model == "RS" else "rounds-rws"
    pool = tuple(
        algorithms if algorithms is not None else SAFE_ALGORITHMS[engine]
    )

    def build(index, algorithm, values, scenario) -> ExecutionRequest:
        return ExecutionRequest(
            name=f"prop-{model.lower()}-{index:06d}",
            engine="rounds",
            algorithm=algorithm,
            values=values,
            t=t,
            model=model,
            scenario=scenario,
            max_rounds=max_rounds,
        )

    return st.builds(
        build,
        st.integers(0, 999_999),
        st.sampled_from(pool),
        initial_values(n),
        failure_scenarios(
            n=n,
            t=t,
            max_round=max_rounds - 1,
            allow_pending=(model == "RWS"),
        ),
    )
