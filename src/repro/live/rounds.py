"""The P-synchronizer: round algorithms on live asynchronous channels.

This is the paper's Section 4.2 construction made executable on a real
(asyncio) network: an asynchronous system equipped with a perfect
failure detector emulates the RWS round model, so any
:class:`~repro.rounds.algorithm.RoundAlgorithm` runs *unmodified*.

Per round ``r`` each process:

1. computes ``msgs_i`` and posts one reliable *round marker* to every
   peer — carrying the algorithm payload for addressed recipients and
   an explicit null otherwise.  Markers from every peer each round are
   what keep the synchronizer deadlock-free: a process whose algorithm
   has gone silent (halted, or simply not addressing someone) still
   advances its peers' rounds;
2. waits until, for every peer ``q``, either ``q``'s round-``r`` marker
   arrived or ``q`` is suspected by the local detector module — the
   "receive from all processes not yet suspected" rule;
3. records deliveries, applies ``trans_i``, and moves on.

**Weak round synchrony falls out.**  A round-``r`` send that its
recipient never consumes requires the sender to have stopped
retransmitting — i.e. crashed — while still in round ``r`` or ``r+1``:
the sender cannot reach round ``r+2`` because completing round ``r+1``
would require the stuck recipient's round-``r+1`` marker, which does
not exist.  That is exactly Lemma 4.1's bound, and the serialized
trace lets the ``synchrony.rws`` oracle re-verify it on every run.

Crash atomicity: the runner's only suspension point is the wait phase,
so a cancellation (crash) always lands with the round's sends complete
and its transition unapplied — a clean round-model crash, reported
with ``applies_transition=False``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.live.cluster import ROUND_MSG
from repro.rounds.algorithm import RoundAlgorithm

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.cluster import LiveCluster


async def run_rounds_session(
    cluster: "LiveCluster",
    session: int,
    pid: int,
    algorithm: RoundAlgorithm,
) -> None:
    """Drive ``pid`` through ``max_rounds`` synchronized rounds."""
    config = cluster.config
    n = config.n
    transport = cluster.transport
    proc = cluster.procs[pid]
    record = session == 0 and config.record_events
    peers = [q for q in range(n) if q != pid]

    state = algorithm.initial_state(pid, n, config.t, config.values[pid])
    decided = False
    halted = False

    for round_index in range(1, config.max_rounds + 1):
        proc.current_round[session] = round_index
        outgoing = {} if halted else dict(algorithm.messages(pid, state))
        buffer = proc.rounds.setdefault((session, round_index), {})

        # Send phase: self-delivery is reliable and instantaneous; every
        # peer gets a marker so rounds advance even across silence.
        # Recorded sessions tag each marker with a transport msg_id so
        # the causal layer can pair the send with its delivery (and the
        # delivery event with the transport's retransmit forensics).
        if pid in outgoing:
            self_mid = transport.register_message(pid, pid) if record else None
            if self_mid is not None:
                meta = transport.meta[self_mid]
                meta.attempts = 1
                meta.wire_s = meta.delivered_s = transport.now()
            buffer[pid] = (True, outgoing[pid], self_mid)
            if record:
                cluster.record(
                    "msg_sent",
                    pid=pid,
                    peer=pid,
                    round_index=round_index,
                    extra={"msg_id": self_mid},
                )
                cluster.record(
                    "msg_delivered",
                    pid=pid,
                    peer=pid,
                    round_index=round_index,
                    extra=transport.delivery_extra(self_mid),
                )
        for q in peers:
            has_payload = q in outgoing
            mid = transport.register_message(pid, q) if record else None
            if has_payload and record:
                cluster.record(
                    "msg_sent",
                    pid=pid,
                    peer=q,
                    round_index=round_index,
                    extra={"msg_id": mid},
                )
            transport.post_reliable(
                pid,
                q,
                (ROUND_MSG, session, round_index, pid, has_payload,
                 outgoing.get(q), mid),
                msg_id=mid,
            )

        # Wait phase: marker or suspicion, for every peer.  The wake
        # event is cleared before the predicate is evaluated, so any
        # arrival or suspicion that lands after the check re-sets it.
        while True:
            proc.wake.clear()
            suspected = cluster.detector.suspected_by(pid)
            if all(q in buffer or q in suspected for q in peers):
                break
            await proc.wake.wait()

        # Receive phase: consume payload-bearing markers that made it.
        received = {}
        for sender in sorted(buffer):
            has_payload, payload, mid = buffer[sender]
            if not has_payload:
                continue
            received[sender] = payload
            if record and sender != pid:
                cluster.record(
                    "msg_delivered",
                    pid=sender,
                    peer=pid,
                    round_index=round_index,
                    extra=transport.delivery_extra(mid),
                )

        if not halted:
            state = algorithm.transition(pid, state, received)
            if not decided:
                decision = algorithm.decision_of(state)
                if decision is not None:
                    decided = True
                    cluster.record_decision(session, pid, round_index, decision)
            halted = algorithm.halted(pid, state)

    if halted and record:
        cluster.record("halt", pid=pid)
