"""Campaign telemetry: run directories, progress, SLOs, and resume.

The acceptance claim under test: a campaign killed mid-sweep and
re-invoked with the same parameters resumes from its run directory,
re-executes **zero** completed cells (proven by the summary's resume
counters), and still produces a merged trace byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.fuzz import run_campaign
from repro.obs.artifacts import (
    DEFAULT_LIVE_SLO,
    RUN_SCHEMA,
    RunDir,
    SLOConfig,
    compute_run_id,
    evaluate_slos,
    identity_for_requests,
)
from repro.obs.progress import ProgressReporter, latest_progress
from repro.obs.report import (
    coverage_over_cells,
    find_run_dir,
    merge_span_snapshots,
    percentile_summary,
    render_report,
    render_top,
    report_json,
    summarize_sweep,
    summary_problems,
)
from repro.runtime import (
    ResultCache,
    ScenarioSpace,
    SweepRunner,
    oracle_sweep_space,
    run_space,
)


def _space(count=6):
    space = oracle_sweep_space()
    return ScenarioSpace.explicit("artifact-test", space.requests[:count])


def _open_run(tmp_path, requests, **overrides):
    options = dict(
        kind="sweep",
        name="artifact-test",
        identity=identity_for_requests(requests),
        cells=[(r.name, r.cache_key()) for r in requests],
        config={"space": "artifact-test"},
    )
    options.update(overrides)
    return RunDir.open(tmp_path / "runs", **options)


def _on_cell_for(run_dir, reporter=None):
    def on_cell(request, result):
        profile = result.extra.get("profile") or {}
        run_dir.record_cell(
            name=request.name,
            key=result.request_key,
            cached=result.cached,
            engine=request.engine,
            algorithm=request.algorithm,
            latency=result.latency,
            num_rounds=result.num_rounds,
            events=len(result.events),
            duration_s=profile.get("duration_s"),
        )
        if reporter is not None:
            reporter.advance(cached=result.cached)

    return on_cell


class TestRunId:
    def test_stable_and_content_sensitive(self):
        assert compute_run_id("sweep", ["a", "b"]) == compute_run_id(
            "sweep", ["a", "b"]
        )
        assert compute_run_id("sweep", ["a", "b"]) != compute_run_id(
            "sweep", ["a", "c"]
        )
        assert compute_run_id("sweep", ["a"]) != compute_run_id("fuzz", ["a"])

    def test_identity_ignores_request_order(self):
        space = _space(4)
        forward = identity_for_requests(space.requests)
        backward = identity_for_requests(list(reversed(space.requests)))
        assert forward == backward

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunDir.open(tmp_path, kind="mystery", name="x", identity=[])


class TestRunDir:
    def test_open_writes_manifest(self, tmp_path):
        space = _space(3)
        run = _open_run(tmp_path, space.requests)
        manifest = json.loads((run.path / "manifest.json").read_text())
        assert manifest["schema"] == RUN_SCHEMA
        assert manifest["kind"] == "sweep"
        assert manifest["status"] == "running"
        assert manifest["legs"] == 1
        assert manifest["planned"] == 3
        assert len(manifest["cells"]) == 3

    def test_reopen_same_identity_bumps_legs(self, tmp_path):
        space = _space(3)
        first = _open_run(tmp_path, space.requests)
        again = _open_run(tmp_path, space.requests)
        assert again.path == first.path
        assert again.manifest["legs"] == 2

    def test_finalize_flips_status_and_writes_summary(self, tmp_path):
        space = _space(2)
        run = _open_run(tmp_path, space.requests)
        run.finalize({"coverage": {"fraction": 1.0}})
        assert run.manifest["status"] == "complete"
        summary = json.loads((run.path / "summary.json").read_text())
        # finalize backfills the identity triplet.
        assert summary["schema"] == RUN_SCHEMA
        assert summary["run_id"] == run.run_id
        assert summary["kind"] == "sweep"

    def test_record_cell_appends_audit_lines(self, tmp_path):
        space = _space(2)
        run = _open_run(tmp_path, space.requests)
        run.record_cell(
            name="cell-0", key="k0", cached=False, engine="rounds"
        )
        run.record_cell(name="cell-1", key="k1", cached=True)
        records = run.metrics_records()
        assert [r["cell"] for r in records] == ["cell-0", "cell-1"]
        assert [r["cached"] for r in records] == [False, True]
        assert all(r["t"] == "cell" and r["leg"] == 1 for r in records)

    def test_load_round_trips(self, tmp_path):
        space = _space(2)
        run = _open_run(tmp_path, space.requests)
        loaded = RunDir.load(run.path)
        assert loaded.run_id == run.run_id
        assert loaded.kind == "sweep"

    def test_find_run_dir_resolves_root_with_one_run(self, tmp_path):
        space = _space(2)
        run = _open_run(tmp_path, space.requests)
        assert find_run_dir(tmp_path / "runs") == run.path
        assert find_run_dir(run.path) == run.path

    def test_find_run_dir_rejects_ambiguous_root(self, tmp_path):
        space = _space(3)
        _open_run(tmp_path, space.requests[:2])
        _open_run(tmp_path, space.requests[1:])
        with pytest.raises(FileNotFoundError):
            find_run_dir(tmp_path / "runs")


class TestSLOs:
    def test_clean_summary_passes(self):
        summary = {
            "coverage": {"fraction": 1.0},
            "oracle": {"checked": 5, "failed": 0},
            "cache": {"corrupt_evictions": 0},
        }
        verdicts = evaluate_slos(SLOConfig(), summary)
        assert [v["slo"] for v in verdicts] == [
            "coverage",
            "oracle_failures",
            "corrupt_evictions",
        ]
        assert all(v["ok"] for v in verdicts)

    def test_partial_coverage_fails(self):
        verdicts = evaluate_slos(
            SLOConfig(), {"coverage": {"fraction": 0.5}}
        )
        assert verdicts == [
            {"slo": "coverage", "threshold": 1.0, "actual": 0.5, "ok": False}
        ]

    def test_live_thresholds_bind_live_sections(self):
        summary = {
            "coverage": {"fraction": 1.0},
            "live": {
                "decision_latency_ms": {"p99": 9000.0},
                "detection_delay_ms": None,
                "false_suspicions": 1,
            },
        }
        by_name = {
            v["slo"]: v for v in evaluate_slos(DEFAULT_LIVE_SLO, summary)
        }
        assert not by_name["decision_latency_p99_ms"]["ok"]
        # Absent evidence passes: no detections happened.
        assert by_name["detection_delay_p99_ms"]["ok"]
        assert by_name["detection_delay_p99_ms"]["actual"] is None
        assert not by_name["false_suspicions"]["ok"]

    def test_slo_config_round_trips(self):
        config = SLOConfig(min_coverage=0.9, decision_latency_p99_ms=100.0)
        assert SLOConfig.from_dict(config.to_dict()) == config


class TestProgressReporter:
    def test_heartbeats_reach_stream_and_file(self, tmp_path):
        stream = io.StringIO()
        path = tmp_path / "progress.jsonl"
        reporter = ProgressReporter(
            total=3, path=path, stream=stream, interval_s=60.0, label="t"
        )
        reporter.start()
        reporter.advance()
        reporter.advance(cached=True)
        reporter.advance(verdict="ok")
        reporter.stop()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        last = latest_progress(lines)
        assert last["done"] == 3
        assert last["total"] == 3
        assert last["cached"] == 1
        assert last["status"] == "complete"
        assert last["verdicts"] == {"ok": 1}
        assert "[t] 3/3" in stream.getvalue()

    def test_context_manager_marks_interruption(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with pytest.raises(RuntimeError):
            with ProgressReporter(total=5, path=path, interval_s=60.0):
                raise RuntimeError("killed")
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert latest_progress(records)["status"] == "interrupted"


class TestReportHelpers:
    def test_percentile_summary(self):
        assert percentile_summary([]) is None
        summary = percentile_summary([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.5

    def test_merge_span_snapshots_folds_counts_and_totals(self):
        merged = merge_span_snapshots(
            [
                {"a": {"count": 2, "total_s": 1.0, "max_s": 0.8}},
                None,
                {"a": {"count": 1, "total_s": 0.5, "max_s": 0.5},
                 "b": {"count": 1, "total_s": 0.1, "max_s": 0.1}},
            ]
        )
        assert merged["a"]["count"] == 3
        assert merged["a"]["total_s"] == pytest.approx(1.5)
        assert merged["a"]["max_s"] == pytest.approx(0.8)
        assert merged["a"]["mean_s"] == pytest.approx(0.5)
        assert merged["b"]["count"] == 1

    def test_coverage_over_cells(self):
        planned = [("c0", "k0"), ("c1", "k1"), ("c2", "k2")]
        coverage = coverage_over_cells(
            planned, {"k0", "k2"}, {"k0": "rounds", "k1": "rounds", "k2": "live"}
        )
        assert coverage["planned"] == 3
        assert coverage["completed"] == 2
        assert coverage["by_engine"]["rounds"] == {
            "planned": 2,
            "completed": 1,
        }

    def test_summary_problems_flags_malformed_documents(self):
        assert summary_problems("not a dict")
        assert summary_problems({"schema": 99})
        bad_coverage = {
            "schema": RUN_SCHEMA,
            "run_id": "x",
            "kind": "sweep",
            "coverage": {"planned": 1, "completed": 2, "fraction": 2.0},
            "resume": {},
            "slo_verdicts": [],
        }
        problems = summary_problems(bad_coverage)
        assert any("completed" in p for p in problems)
        assert any("fraction" in p for p in problems)


class TestCacheStats:
    def test_counts_hits_misses_and_stores(self, tmp_path):
        space = _space(3)
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(space)
        assert cache.stats.as_dict() == {
            "hits": 0,
            "misses": 3,
            "stores": 3,
            "corrupt_evictions": 0,
        }
        warm = ResultCache(tmp_path / "cache")
        SweepRunner(cache=warm).run(space)
        assert warm.stats.hits == 3
        assert warm.stats.misses == 0

    def test_corrupt_entry_counts_as_eviction_and_surfaces(self, tmp_path):
        space = _space(2)
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(space)
        victim = next((tmp_path / "cache").glob("*.json"))
        victim.write_text("{ not json", encoding="utf-8")
        retry = ResultCache(tmp_path / "cache")
        result = SweepRunner(cache=retry).run(space)
        assert retry.stats.corrupt_evictions == 1
        assert result.cache_stats["corrupt_evictions"] == 1
        assert "corrupt" in result.describe()


class TestResumeFromManifest:
    """The acceptance criterion: kill at ~50%, restart, zero re-execution."""

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path):
        space = _space(6)
        requests = space.requests

        # The uninterrupted reference run.
        reference = SweepRunner().run(space)
        reference_lines = list(reference.merged_jsonl_lines())

        # Leg 1: die after 3 cells, mid-campaign.
        run = _open_run(tmp_path, requests)
        cache = ResultCache(run.results_dir)
        seen = []

        def dying_on_cell(request, result):
            _on_cell_for(run)(request, result)
            seen.append(result.request_key)
            if len(seen) == 3:
                raise KeyboardInterrupt

        runner = SweepRunner(cache=cache, on_cell=dying_on_cell)
        with pytest.raises(KeyboardInterrupt):
            runner.run(space)
        run.mark_interrupted()
        assert run.manifest["status"] == "interrupted"
        completed_mid = run.completed_keys()
        assert len(completed_mid) == 3

        # Leg 2: same campaign, fresh invocation against the same root.
        resumed = _open_run(tmp_path, requests)
        assert resumed.path == run.path
        assert resumed.manifest["legs"] == 2
        completed_before = resumed.completed_keys()
        cache2 = ResultCache(resumed.results_dir)
        executed_keys = []

        def tracking_on_cell(request, result):
            _on_cell_for(resumed)(request, result)
            if not result.cached:
                executed_keys.append(result.request_key)

        sweep = SweepRunner(cache=cache2, on_cell=tracking_on_cell).run(space)
        summary = summarize_sweep(
            resumed, sweep, completed_before=completed_before
        )
        resumed.finalize(summary)

        # Zero re-execution, proven by the summary's own counters.
        assert summary["resume"]["completed_before"] == 3
        assert summary["resume"]["executed"] == 3
        assert summary["resume"]["cached"] == 3
        assert summary["resume"]["re_executed"] == 0
        assert set(executed_keys) & completed_before == set()
        assert summary["coverage"]["fraction"] == 1.0
        assert summary_problems(summary) == []

        # And the merged trace matches the uninterrupted run, byte for byte.
        assert list(sweep.merged_jsonl_lines()) == reference_lines

    def test_fuzz_campaign_resumes_from_run_root(self, tmp_path):
        baseline = run_campaign(budget=4, seed=11, cache_dir=None)
        report = run_campaign(
            budget=4, seed=11, run_root=str(tmp_path / "runs")
        )
        assert report.run_dir is not None
        run = RunDir.load(report.run_dir)
        summary = run.summary()
        assert summary["resume"]["re_executed"] == 0
        assert summary["coverage"]["fraction"] == 1.0
        assert summary_problems(summary) == []
        assert summary["fuzz"]["budget"] == 4
        assert report.ok == baseline.ok

        # Re-invoking the identical campaign is a pure cache replay.
        again = run_campaign(
            budget=4, seed=11, run_root=str(tmp_path / "runs")
        )
        rerun = RunDir.load(again.run_dir)
        assert rerun.path == run.path
        resummary = rerun.summary()
        assert resummary["resume"]["executed"] == 0
        assert resummary["resume"]["re_executed"] == 0
        assert rerun.manifest["legs"] == 2


class TestRendering:
    def _finished_run(self, tmp_path):
        space = _space(4)
        run = _open_run(tmp_path, space.requests)
        cache = ResultCache(run.results_dir)
        sweep = SweepRunner(cache=cache, on_cell=_on_cell_for(run)).run(space)
        run.finalize(summarize_sweep(run, sweep, completed_before=set()))
        return run

    def test_render_report_covers_the_dashboard(self, tmp_path):
        run = self._finished_run(tmp_path)
        text = render_report(run)
        assert f"run {run.run_id}" in text
        assert "coverage: 4/4" in text
        assert "SLO: PASS" in text
        assert "resume:" in text

    def test_report_json_document_validates(self, tmp_path):
        run = self._finished_run(tmp_path)
        document = report_json(run)
        assert document["manifest"]["run_id"] == run.run_id
        assert summary_problems(document["summary"]) == []

    def test_render_top_without_heartbeats(self, tmp_path):
        space = _space(2)
        run = _open_run(tmp_path, space.requests)
        assert "no heartbeats yet" in render_top(run)


class TestCLISurfaces:
    def test_sweep_run_dir_then_report_and_top(self, tmp_path, capsys):
        from repro.cli.main import main

        root = str(tmp_path / "runs")
        assert main(["sweep", "oracle-sweep", "--run-dir", root]) == 0
        out = capsys.readouterr().out
        assert "run artifacts:" in out

        assert main(["report", root]) == 0
        out = capsys.readouterr().out
        assert "SLO: PASS" in out
        assert "coverage: 30/30" in out

        assert main(["report", root, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert summary_problems(document["summary"]) == []

        run_path = find_run_dir(root)
        assert main(["top", str(run_path)]) == 0
        assert "30/30" in capsys.readouterr().out

    def test_sweep_resume_via_cli_reports_zero_reexecution(
        self, tmp_path, capsys
    ):
        from repro.cli.main import main

        root = str(tmp_path / "runs")
        assert main(["sweep", "oracle-sweep", "--run-dir", root]) == 0
        capsys.readouterr()
        assert main(["sweep", "oracle-sweep", "--run-dir", root]) == 0
        assert "cached 30" in capsys.readouterr().out
        summary = RunDir.load(find_run_dir(root)).summary()
        assert summary["resume"]["executed"] == 0
        assert summary["resume"]["re_executed"] == 0

    def test_report_on_missing_directory_fails_cleanly(
        self, tmp_path, capsys
    ):
        from repro.cli.main import main

        assert main(["report", str(tmp_path / "nowhere")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_json_includes_percentiles(self, capsys):
        from repro.cli.main import main

        assert main(["metrics", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        histogram = snapshot["histograms"]["decision.round"]
        assert {"p50", "p90", "p99"} <= set(histogram)

    def test_metrics_render_shows_p99(self, capsys):
        from repro.cli.main import main

        assert main(["metrics"]) == 0
        assert "p99=" in capsys.readouterr().out


class TestInProgressReporting:
    """Reports on a run that has not finalized — an overnight campaign
    (or a serve run mid-flight) must stay reportable."""

    @staticmethod
    def _bench_report():
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "bench_report.py"
        )
        spec = importlib.util.spec_from_file_location("bench_report", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _half_finished_run(self, tmp_path):
        requests = _space(4).requests
        run = _open_run(tmp_path, requests)
        on_cell = _on_cell_for(run)
        for request in requests[:2]:
            result = run_space(
                ScenarioSpace.explicit("half", [request])
            ).results[0]
            on_cell(request, result)
        return run

    def test_report_json_flags_unfinalized_run(self, tmp_path):
        run = self._half_finished_run(tmp_path)
        document = report_json(run)
        assert document["in_progress"] is True
        assert document["summary"] is None
        assert document["manifest"]["run_id"] == run.run_id
        # render_report must not crash either — it is what `repro
        # report` prints for a live run.
        assert "no summary.json" in render_report(run)

        run.finalize(summary={"schema": RUN_SCHEMA, "status": "complete"})
        assert report_json(run)["in_progress"] is False

    def test_bench_report_accepts_in_progress_run_dir(self, tmp_path, capsys):
        run = self._half_finished_run(tmp_path)
        bench_report = self._bench_report()
        out = tmp_path / "BENCH_TEST.json"
        code = bench_report.main([str(run.path), "-o", str(out)])
        assert code == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["in_progress"] is True
        # The per-cell audit records are skipped, not fatal.
        assert report["skipped_records"] >= 2
        captured = capsys.readouterr()
        assert "no summary.json" in captured.err

    def test_bench_report_on_metrics_file_inside_run_dir(self, tmp_path):
        run = self._half_finished_run(tmp_path)
        run.finalize(summary={"schema": RUN_SCHEMA, "status": "complete"})
        bench_report = self._bench_report()
        out = tmp_path / "BENCH_TEST2.json"
        code = bench_report.main(
            [str(run.path / "metrics.jsonl"), "-o", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["in_progress"] is False

    def test_bench_report_before_first_cell(self, tmp_path):
        # metrics.jsonl is appended lazily; a freshly opened run dir
        # has none, and that is still a reportable (empty) partial.
        run = _open_run(tmp_path, _space(2).requests)
        bench_report = self._bench_report()
        out = tmp_path / "BENCH_EMPTY.json"
        assert bench_report.main([str(run.path), "-o", str(out)]) == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["in_progress"] is True
        assert report["num_spans"] == 0
