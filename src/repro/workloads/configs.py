"""Initial-configuration builders."""

from __future__ import annotations

import random
from typing import Any, Sequence


def unanimous(n: int, value: Any = 0) -> tuple[Any, ...]:
    """All processes propose the same value — the C_Opt fast-path case."""
    return tuple([value] * n)


def adversarial_split(n: int, low: Any = 0, high: Any = 1) -> tuple[Any, ...]:
    """Process 0 proposes the minimum, everyone else the maximum.

    The configuration behind most disagreement scenarios: whoever
    learns p0's value decides differently from whoever does not.
    """
    return (low,) + tuple([high] * (n - 1))


def random_values(
    n: int, rng: random.Random, domain: Sequence[Any] = (0, 1)
) -> tuple[Any, ...]:
    """A uniformly random configuration over ``domain``."""
    return tuple(rng.choice(list(domain)) for _ in range(n))
