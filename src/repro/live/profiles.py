"""Named network fault profiles for the live transport.

A profile fixes the per-link behaviour of the in-process network:
latency bounds, the per-attempt drop probability, and any partition
windows.  Partitions are expressed as wall-clock windows (seconds from
cluster start) that sever every link crossing a process group — the
classic "split" fault, distinct from drops in that *no* attempt gets
through while the window is open.

The three registered profiles form a severity ladder:

* ``lan`` — sub-millisecond delays, no loss.  The control case: the
  detector's timeout arithmetic must hold trivially here.
* ``lossy`` — milliseconds of jitter and 15% per-attempt loss.  The
  retransmission layer must mask the loss (fair-lossy link + retry =
  reliable channel) and the detector must stay accurate because its
  silence tolerance covers many consecutive losses.
* ``adversarial`` — 25% loss, wider jitter, and a partition window
  isolating process 0.  The window is deliberately *shorter* than the
  default detector tolerance: a sound P implementation must ride it
  out without a false suspicion, while reliable sends heal across it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PartitionWindow:
    """A wall-clock window during which a process group is cut off.

    Attributes:
        start_s: Window start, seconds from cluster start (inclusive).
        end_s: Window end, seconds from cluster start (exclusive).
        group: The isolated processes; every link with exactly one
            endpoint in the group is severed while the window is open.
    """

    start_s: float
    end_s: float
    group: frozenset[int]

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"partition window [{self.start_s}, {self.end_s}) is empty"
            )
        object.__setattr__(self, "group", frozenset(self.group))

    def severs(self, sender: int, recipient: int, now_s: float) -> bool:
        """True when this window cuts the ``sender -> recipient`` link."""
        if not self.start_s <= now_s < self.end_s:
            return False
        return (sender in self.group) != (recipient in self.group)


@dataclass(frozen=True)
class NetProfile:
    """Per-link network behaviour of a live cluster.

    Attributes:
        name: Registry key.
        min_delay_s / max_delay_s: Uniform one-way latency bounds.
        drop_prob: Per-attempt probability that a message is lost.
        partitions: Partition windows applied on top of drops.
    """

    name: str
    min_delay_s: float
    max_delay_s: float
    drop_prob: float = 0.0
    partitions: tuple[PartitionWindow, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_delay_s <= self.max_delay_s:
            raise ConfigurationError(
                f"profile {self.name!r}: need 0 <= min_delay <= max_delay, "
                f"got [{self.min_delay_s}, {self.max_delay_s}]"
            )
        if not 0.0 <= self.drop_prob < 1.0:
            raise ConfigurationError(
                f"profile {self.name!r}: drop_prob must be in [0, 1), "
                f"got {self.drop_prob}"
            )
        object.__setattr__(self, "partitions", tuple(self.partitions))

    def sample_delay(self, rng: random.Random) -> float:
        """One-way latency for a single delivery attempt."""
        return rng.uniform(self.min_delay_s, self.max_delay_s)

    def drops(self, rng: random.Random) -> bool:
        """Whether a single delivery attempt is lost."""
        return self.drop_prob > 0.0 and rng.random() < self.drop_prob

    def severed(self, sender: int, recipient: int, now_s: float) -> bool:
        """Whether a partition currently cuts the link."""
        return any(
            window.severs(sender, recipient, now_s)
            for window in self.partitions
        )


#: Registered profiles, mildest first.  The adversarial partition
#: window (40 ms) is well inside the default P tolerance
#: (``interval * miss_threshold`` = 150 ms, see
#: :class:`repro.live.detector.DetectorConfig`), so accuracy must
#: survive it with margin to spare for drop streaks at its edges.
NET_PROFILES: dict[str, NetProfile] = {
    profile.name: profile
    for profile in (
        NetProfile(
            name="lan",
            min_delay_s=0.0003,
            max_delay_s=0.002,
        ),
        NetProfile(
            name="lossy",
            min_delay_s=0.001,
            max_delay_s=0.006,
            drop_prob=0.15,
        ),
        NetProfile(
            name="adversarial",
            min_delay_s=0.002,
            max_delay_s=0.010,
            drop_prob=0.25,
            partitions=(
                PartitionWindow(
                    start_s=0.08, end_s=0.12, group=frozenset({0})
                ),
            ),
        ),
    )
}


def profile_by_name(name: str) -> NetProfile:
    """Look up a registered profile; unknown names raise with the list."""
    profile = NET_PROFILES.get(name)
    if profile is None:
        raise ConfigurationError(
            f"unknown net profile {name!r}; choose from "
            f"{sorted(NET_PROFILES)}"
        )
    return profile
