"""E1 — SDD is solvable in SS (paper Section 3).

Times the randomized SS sweep: sender crash times x values x (Φ, Δ)
configurations, checking integrity/validity/termination on every run.
"""

from repro.core.experiments import experiment_e1


def bench_e1_sdd_solvable_in_ss(once):
    result = once(experiment_e1, True)
    assert result.ok, result.describe()
