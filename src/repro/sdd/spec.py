"""The SDD problem specification as a run checker.

Convention: the sender ``p_i`` is process 0, the receiver ``p_j`` is
process 1.  Receiver automata record their decisions in a state
attribute ``decisions`` — a tuple of every ``decide`` event, so that
integrity (at most one decision) is checkable rather than enforced by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.simulation.run import Run

SENDER = 0
RECEIVER = 1


def sdd_decision(run: Run) -> Any:
    """The receiver's decision in a finished run, or ``None``."""
    decisions = getattr(run.final_states[RECEIVER], "decisions", ())
    return decisions[0] if decisions else None


@dataclass
class SDDVerdict:
    """Outcome of checking one run against the SDD specification."""

    ok: bool
    violations: list[str]
    decision: Any

    def describe(self) -> str:
        if self.ok:
            return f"SDD ok (decision={self.decision!r})"
        return "SDD violated: " + "; ".join(self.violations)


def check_sdd_run(run: Run, sender_value: Any) -> SDDVerdict:
    """Check integrity, validity and termination on one run.

    Args:
        run: A finished run with the sender as process 0 and the
            receiver as process 1.
        sender_value: ``p_i``'s initial value (0 or 1).

    Termination is checked horizon-relative: a correct receiver must
    have decided within the executed prefix, so callers must run long
    enough for the algorithm's own deadline to pass.
    """
    violations: list[str] = []
    decisions = getattr(run.final_states[RECEIVER], "decisions", ())

    if len(decisions) > 1:
        violations.append(
            f"integrity: receiver decided {len(decisions)} times "
            f"({decisions!r})"
        )

    sender_initially_dead = SENDER in run.pattern.initially_dead
    # "Initially crashed" in step terms: the sender never took a step.
    sender_took_step = any(step.pid == SENDER for step in run.schedule)
    if decisions and not sender_initially_dead and sender_took_step:
        if decisions[0] != sender_value:
            violations.append(
                f"validity: sender was not initially crashed (value "
                f"{sender_value!r}) but receiver decided {decisions[0]!r}"
            )

    if RECEIVER in run.pattern.correct and not decisions:
        violations.append(
            "termination: correct receiver never decided within the "
            f"{len(run.schedule)}-step prefix"
        )

    return SDDVerdict(
        ok=not violations,
        violations=violations,
        decision=decisions[0] if decisions else None,
    )
