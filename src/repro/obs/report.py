"""Campaign summaries and the ``repro report`` terminal dashboard.

This module turns a run directory's raw facts — the manifest, the
per-cell ``metrics.jsonl`` audit log, per-cell span snapshots — into
the ``summary.json`` verdict document, validates that document's
schema, and renders both as a terminal dashboard:

* coverage over the scenario space's cells (total and per engine);
* resume counters (``completed_before`` / ``re_executed``) — the proof
  that a restarted campaign executed only what the first leg left;
* cache telemetry (hits, misses, corrupt-entry evictions);
* a flamegraph-style tree of aggregated profiler spans;
* live decision-latency / detection-delay percentiles judged against
  the run's SLO thresholds;
* the top-k slowest cells.

The builders are duck-typed over the runtime's ``SweepResult`` (and
the fuzz/live equivalents) rather than importing them: ``repro.obs``
is the substrate those layers build on, and must not import back up
the stack.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.artifacts import (
    RUN_KINDS,
    RUN_SCHEMA,
    RunDir,
    SLOConfig,
    evaluate_slos,
)
from repro.stats import percentile

#: Span-aggregate fields that fold exactly across snapshots.
_FOLDABLE = ("count", "total_s", "max_s")


def percentile_summary(values: Sequence[float]) -> dict[str, Any] | None:
    """count/mean/p50/p90/p99/max of a sample, or ``None`` when empty."""
    if not values:
        return None
    values = list(values)
    return {
        "count": len(values),
        "mean": round(sum(values) / len(values), 3),
        "p50": round(percentile(values, 50), 3),
        "p90": round(percentile(values, 90), 3),
        "p99": round(percentile(values, 99), 3),
        "max": round(max(values), 3),
    }


def merge_span_snapshots(
    snapshots: Iterable[Mapping[str, Mapping[str, Any]] | None],
) -> dict[str, dict[str, Any]]:
    """Fold per-cell profiler snapshots into one span aggregate.

    Counts and totals add, maxima take the max, and the mean is
    recomputed from the folded figures.  Percentile fields are dropped:
    they cannot be folded from summaries, and the per-cell snapshots
    remain on the results for anyone who needs the distribution.
    """
    merged: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, stats in snapshot.items():
            slot = merged.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            slot["count"] += int(stats.get("count", 0) or 0)
            slot["total_s"] += float(stats.get("total_s", 0.0) or 0.0)
            slot["max_s"] = max(slot["max_s"], float(stats.get("max_s", 0.0) or 0.0))
    for slot in merged.values():
        slot["mean_s"] = slot["total_s"] / slot["count"] if slot["count"] else 0.0
    return merged


def causal_cells(
    named_events: Iterable[tuple[str, Sequence[Any]]],
) -> dict[str, Any] | None:
    """Fold per-cell causal analyses into one summary block.

    For every cell with a trace: the max critical-path hop count, the
    Λ-bound anomalies (:func:`repro.obs.critical.verify_round_paths`),
    and for live traces the slowest decision's retransmit share.  Also
    flags a clock mix — cells stamped by the logical counter are not
    wall-comparable with live-replayed ones, so cross-cell timestamp
    comparisons would be meaningless.
    """
    from repro.obs.critical import causal_summary
    from repro.obs.events import clock_kind

    cells: list[dict[str, Any]] = []
    clocks: set[str] = set()
    anomaly_cells: list[str] = []
    for name, events in named_events:
        if not events:
            continue
        summary = causal_summary(events)
        clocks.add(clock_kind(events))
        entry: dict[str, Any] = {
            "cell": name,
            "max_path_length": summary["max_path_length"],
            "anomalies": summary["anomalies"],
        }
        if "slowest_decision" in summary:
            entry["retransmit_share"] = summary["slowest_decision"][
                "retransmit_share"
            ]
        if summary["anomalies"]:
            anomaly_cells.append(name)
        cells.append(entry)
    if not cells:
        return None
    block: dict[str, Any] = {
        "cells": cells,
        "anomaly_cells": anomaly_cells,
        "clocks": sorted(clocks),
    }
    if len(clocks) > 1:
        block["warning"] = (
            "trace clocks are mixed (logical and wall); timestamps are "
            "not comparable across cells"
        )
    return block


def coverage_over_cells(
    planned: Sequence[tuple[str, str]],
    completed_keys: set[str],
    engines_by_key: Mapping[str, str] | None = None,
) -> dict[str, Any]:
    """Coverage of a planned cell list: total and per engine."""
    total = len(planned)
    done = sum(1 for _, key in planned if key in completed_keys)
    coverage: dict[str, Any] = {
        "planned": total,
        "completed": done,
        "fraction": round(done / total, 6) if total else 1.0,
    }
    if engines_by_key:
        by_engine: dict[str, dict[str, int]] = {}
        for _, key in planned:
            engine = engines_by_key.get(key, "?")
            slot = by_engine.setdefault(engine, {"planned": 0, "completed": 0})
            slot["planned"] += 1
            if key in completed_keys:
                slot["completed"] += 1
        coverage["by_engine"] = by_engine
    return coverage


# ---------------------------------------------------------------------------
# Summary builders (duck-typed over the runtime's result objects)
# ---------------------------------------------------------------------------


def summarize_sweep(
    run: RunDir,
    sweep_result: Any,
    *,
    completed_before: set[str],
    extra_spans: Mapping[str, Mapping[str, Any]] | None = None,
    slo: SLOConfig | None = None,
) -> dict[str, Any]:
    """The ``summary.json`` document of one sweep (or fuzz-sweep) leg.

    ``completed_before`` are the request keys already on disk when this
    leg started; intersecting them with the keys this leg *executed*
    (rather than served from cache) yields ``re_executed`` — the
    counter the resume acceptance test pins to zero.
    """
    requests = list(sweep_result.requests)
    results = list(sweep_result.results)
    keys = [request.cache_key() for request in requests]
    executed_keys = {
        key
        for key, result in zip(keys, results)
        if not getattr(result, "cached", False)
    }
    planned = [(request.name, key) for request, key in zip(requests, keys)]
    engines_by_key = {key: request.engine for request, key in zip(requests, keys)}
    completed_now = run.completed_keys() | set(keys)

    summary: dict[str, Any] = {
        "schema": RUN_SCHEMA,
        "run_id": run.run_id,
        "kind": run.kind,
        "space": sweep_result.space_name,
        "coverage": coverage_over_cells(planned, completed_now, engines_by_key),
        "resume": {
            "completed_before": len(completed_before),
            "executed": sweep_result.executed,
            "cached": sweep_result.cached,
            "re_executed": len(completed_before & executed_keys),
        },
        "latency_by_algorithm": {
            name: {"best": best, "worst": worst}
            for name, (best, worst) in sorted(
                sweep_result.latency_by_algorithm().items()
            )
        },
    }

    cache = getattr(sweep_result, "cache_stats", None)
    if cache is not None:
        summary["cache"] = dict(cache)

    # Vector-engine kernel/fallback split: which cells the columnar
    # kernel declined, and why (``extra["vector_fallback"]`` telemetry).
    vector_planned = sum(
        1 for request in requests if request.engine == "vector"
    )
    if vector_planned:
        reasons: dict[str, int] = {}
        fallback_cells: list[str] = []
        for request, result in zip(requests, results):
            reason = (getattr(result, "extra", None) or {}).get(
                "vector_fallback"
            )
            if reason is not None:
                reasons[reason] = reasons.get(reason, 0) + 1
                fallback_cells.append(request.name)
        summary["vector"] = {
            "cells": vector_planned,
            "kernel": vector_planned - len(fallback_cells),
            "fallbacks": dict(sorted(reasons.items())),
            "fallback_cells": fallback_cells,
        }

    checks = getattr(sweep_result, "checks", None)
    if checks is not None:
        failed = [check.name for check in checks if not check.ok]
        summary["oracle"] = {
            "checked": len(checks),
            "failed": len(failed),
            "failed_cells": failed,
        }

    spans = merge_span_snapshots(
        [
            (result.extra.get("profile") or {}).get("spans")
            for result in results
        ]
        + [dict(extra_spans) if extra_spans else None]
    )
    if spans:
        summary["spans"] = spans

    durations = [
        {
            "cell": request.name,
            "duration_s": round(result.extra["profile"]["duration_s"], 6),
        }
        for request, result in zip(requests, results)
        if not getattr(result, "cached", False)
        and isinstance(result.extra.get("profile"), dict)
        and result.extra["profile"].get("duration_s") is not None
    ]
    durations.sort(key=lambda entry: entry["duration_s"], reverse=True)
    summary["slowest_cells"] = durations[:10]

    causal = causal_cells(
        (request.name, getattr(result, "events", None) or [])
        for request, result in zip(requests, results)
    )
    if causal is not None:
        summary["causal"] = causal

    summary["slo_verdicts"] = evaluate_slos(slo or run.slo, summary)
    return summary


def summarize_live(
    run: RunDir,
    stats: Mapping[str, Any],
    *,
    session_latencies_ms: Sequence[float] = (),
    detection_delays_ms: Sequence[float] = (),
    oracle_failed: int | None = None,
    extra_spans: Mapping[str, Mapping[str, Any]] | None = None,
    slo: SLOConfig | None = None,
    events: Sequence[Any] | None = None,
) -> dict[str, Any]:
    """The ``summary.json`` document of one live (cluster) run.

    ``events`` is session 0's serialized trace when the run recorded
    one; its causal analysis (critical-path hop counts, the slowest
    decision's retransmit share, Λ-bound anomalies) is embedded under
    ``live.causal``.
    """
    sessions = int(stats.get("sessions", 1) or 1)
    completed = int(stats.get("sessions_completed", 0) or 0)
    quality = stats.get("detector_quality", {}) or {}
    summary: dict[str, Any] = {
        "schema": RUN_SCHEMA,
        "run_id": run.run_id,
        "kind": run.kind,
        "coverage": {
            "planned": sessions,
            "completed": completed,
            "fraction": round(completed / sessions, 6) if sessions else 1.0,
        },
        "live": {
            "profile": stats.get("profile"),
            "algorithm": stats.get("algorithm"),
            "detector": stats.get("detector"),
            "duration_s": stats.get("duration_s"),
            "decisions": stats.get("decisions"),
            "decisions_per_s": stats.get("decisions_per_s"),
            "false_suspicions": quality.get("false_suspicions", 0),
            "suspicions": quality.get("suspicions", 0),
            "decision_latency_ms": percentile_summary(list(session_latencies_ms)),
            "detection_delay_ms": percentile_summary(list(detection_delays_ms)),
            "transport": stats.get("transport"),
        },
    }
    if events:
        from repro.obs.critical import causal_summary

        analysis = causal_summary(events)
        summary["live"]["causal"] = {
            "max_path_length": analysis["max_path_length"],
            "anomalies": analysis["anomalies"],
            "suspicions_justified": sum(
                1
                for report in analysis["suspicions"]
                if report.get("justified")
            ),
            "slowest_decision": analysis.get("slowest_decision"),
        }
    if oracle_failed is not None:
        summary["oracle"] = {"checked": 1, "failed": oracle_failed}
    spans = merge_span_snapshots([dict(extra_spans) if extra_spans else None])
    if spans:
        summary["spans"] = spans
    summary["slo_verdicts"] = evaluate_slos(slo or run.slo, summary)
    return summary


def summarize_fuzz(
    run: RunDir,
    fuzz_report: Any,
    sweep_result: Any,
    *,
    completed_before: set[str],
    extra_spans: Mapping[str, Mapping[str, Any]] | None = None,
    slo: SLOConfig | None = None,
) -> dict[str, Any]:
    """The ``summary.json`` document of one fuzz campaign leg."""
    summary = summarize_sweep(
        run,
        sweep_result,
        completed_before=completed_before,
        extra_spans=extra_spans,
        slo=slo,
    )
    summary["fuzz"] = {
        "budget": fuzz_report.budget,
        "seed": fuzz_report.seed,
        "engines": list(fuzz_report.engines),
        "twins": fuzz_report.twins,
        "parity_cells": fuzz_report.parity_cells,
        "parity_problems": list(fuzz_report.parity_problems),
        "counterexamples": [
            ce.original.name for ce in fuzz_report.counterexamples
        ],
    }
    # The differential oracles are the fuzz campaign's "trace oracle":
    # fold their verdict into the oracle section the SLOs judge.
    failed = len(fuzz_report.counterexamples) + len(fuzz_report.parity_problems)
    summary["oracle"] = {
        "checked": fuzz_report.budget,
        "failed": failed,
        "failed_cells": [ce.original.name for ce in fuzz_report.counterexamples],
    }
    summary["slo_verdicts"] = evaluate_slos(slo or run.slo, summary)
    return summary


# ---------------------------------------------------------------------------
# Schema validation (check_trace.py-style: a list of problem strings)
# ---------------------------------------------------------------------------


def summary_problems(summary: Any) -> list[str]:
    """Schema assertions over a ``summary.json`` document.

    Mirrors :func:`repro.obs.schema.validate_jsonl_lines`: returns one
    human-readable problem per violated invariant, empty when the
    document is well-formed.  Used by ``scripts/check_summary.py`` and
    the CI ``report-smoke`` job.
    """
    problems: list[str] = []
    if not isinstance(summary, Mapping):
        return [f"summary is not an object (got {type(summary).__name__})"]

    def require(key: str, types: Any, where: Mapping[str, Any], path: str = "") -> Any:
        label = f"{path}{key}"
        if key not in where:
            problems.append(f"missing required key {label!r}")
            return None
        value = where[key]
        if not isinstance(value, types):
            problems.append(
                f"{label!r} has type {type(value).__name__}, expected "
                f"{types if isinstance(types, type) else '/'.join(t.__name__ for t in types)}"
            )
            return None
        return value

    schema = require("schema", int, summary)
    if schema is not None and schema != RUN_SCHEMA:
        problems.append(f"schema is {schema}, expected {RUN_SCHEMA}")
    require("run_id", str, summary)
    kind = require("kind", str, summary)
    if kind is not None and kind not in RUN_KINDS:
        problems.append(f"kind {kind!r} not in {RUN_KINDS}")

    coverage = require("coverage", Mapping, summary)
    if coverage is not None:
        planned = require("planned", int, coverage, "coverage.")
        completed = require("completed", int, coverage, "coverage.")
        fraction = require("fraction", (int, float), coverage, "coverage.")
        if (
            planned is not None
            and completed is not None
            and completed > planned
        ):
            problems.append(
                f"coverage.completed ({completed}) exceeds planned ({planned})"
            )
        if fraction is not None and not (0.0 <= float(fraction) <= 1.0):
            problems.append(f"coverage.fraction {fraction} outside [0, 1]")

    verdicts = require("slo_verdicts", list, summary)
    if verdicts is not None:
        for index, verdict in enumerate(verdicts):
            if not isinstance(verdict, Mapping):
                problems.append(f"slo_verdicts[{index}] is not an object")
                continue
            for field, types in (("slo", str), ("ok", bool)):
                if not isinstance(verdict.get(field), types):
                    problems.append(
                        f"slo_verdicts[{index}].{field} missing or mistyped"
                    )

    if kind in ("sweep", "fuzz") and isinstance(summary.get("resume"), Mapping):
        resume = summary["resume"]
        for field in ("completed_before", "executed", "cached", "re_executed"):
            if not isinstance(resume.get(field), int):
                problems.append(f"resume.{field} missing or mistyped")
    elif kind in ("sweep", "fuzz"):
        problems.append("missing required key 'resume'")

    if kind == "live":
        live = require("live", Mapping, summary)
        if live is not None:
            for field in ("decision_latency_ms", "detection_delay_ms"):
                value = live.get(field)
                if value is not None and not isinstance(value, Mapping):
                    problems.append(f"live.{field} is not an object or null")

    spans = summary.get("spans")
    if spans is not None:
        if not isinstance(spans, Mapping):
            problems.append("'spans' is not an object")
        else:
            for name, stats in spans.items():
                if not isinstance(stats, Mapping) or not all(
                    isinstance(stats.get(field), (int, float))
                    for field in _FOLDABLE
                ):
                    problems.append(f"spans[{name!r}] missing count/total_s/max_s")

    if kind == "fuzz" and not isinstance(summary.get("fuzz"), Mapping):
        problems.append("missing required key 'fuzz'")

    return problems


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _span_tree_lines(spans: Mapping[str, Mapping[str, Any]]) -> list[str]:
    """Flamegraph-style indented tree of dotted span names."""
    root: dict[str, Any] = {"agg": None, "children": {}}
    for name in sorted(spans):
        node = root
        for segment in name.split("."):
            node = node["children"].setdefault(
                segment, {"agg": None, "children": {}}
            )
        node["agg"] = spans[name]

    def total_of(node: dict[str, Any]) -> float:
        if node["agg"] is not None:
            return float(node["agg"]["total_s"])
        return sum(total_of(child) for child in node["children"].values())

    grand_total = max(
        sum(total_of(child) for child in root["children"].values()), 1e-12
    )
    lines: list[str] = []

    def walk(node: dict[str, Any], label: str, depth: int) -> None:
        total = total_of(node)
        share = total / grand_total
        bar = "█" * max(1, round(share * 24)) if total > 0 else ""
        agg = node["agg"]
        count = f" ×{agg['count']}" if agg else ""
        lines.append(
            f"  {'  ' * depth}{label:<{max(34 - 2 * depth, 8)}} "
            f"{total * 1000:10.2f} ms {share * 100:5.1f}% {bar}{count}"
        )
        children = sorted(
            node["children"].items(),
            key=lambda item: total_of(item[1]),
            reverse=True,
        )
        for child_label, child in children:
            walk(child, child_label, depth + 1)

    for label, child in sorted(
        root["children"].items(),
        key=lambda item: total_of(item[1]),
        reverse=True,
    ):
        walk(child, label, 0)
    return lines


def _verdict_lines(verdicts: Sequence[Mapping[str, Any]]) -> list[str]:
    lines = []
    for verdict in verdicts:
        mark = "PASS" if verdict.get("ok") else "FAIL"
        lines.append(
            f"  {mark}  {verdict.get('slo')}: actual "
            f"{verdict.get('actual')!r} vs threshold "
            f"{verdict.get('threshold')!r}"
        )
    return lines


def render_report(
    run: RunDir,
    *,
    top: int = 5,
) -> str:
    """The ``repro report RUNDIR`` terminal dashboard, as one string."""
    manifest = run.manifest
    summary = run.summary()
    lines = [
        f"run {run.run_id} ({manifest.get('kind')}, "
        f"status {manifest.get('status')}, leg {manifest.get('legs', 1)})"
    ]
    git = manifest.get("git") or {}
    if git.get("commit"):
        dirty = " (dirty)" if git.get("dirty") else ""
        lines.append(f"  commit {git['commit'][:12]}{dirty}")
    if manifest.get("injection"):
        lines.append(f"  INJECTED BUG: {manifest['injection']}")
    if manifest.get("name"):
        lines.append(f"  campaign: {manifest['name']}")

    if summary is None:
        lines.append("no summary.json yet (campaign still running or interrupted)")
        progress = run.progress_records()
        if progress:
            last = progress[-1]
            lines.append(
                f"  latest progress: {last.get('done')}/{last.get('total')} "
                f"({last.get('cells_per_s')} cells/s, eta {last.get('eta_s')}s)"
            )
        return "\n".join(lines)

    coverage = summary.get("coverage", {})
    lines.append(
        f"coverage: {coverage.get('completed')}/{coverage.get('planned')} "
        f"cells ({100 * float(coverage.get('fraction', 0)):.1f}%)"
    )
    by_engine = coverage.get("by_engine") or {}
    if by_engine:
        lines.append("  engine          planned  completed")
        for engine, slot in sorted(by_engine.items()):
            lines.append(
                f"  {engine:<15} {slot['planned']:>7}  {slot['completed']:>9}"
            )

    resume = summary.get("resume")
    if resume is not None:
        lines.append(
            f"resume: {resume['completed_before']} completed before this leg, "
            f"{resume['executed']} executed, {resume['cached']} cached, "
            f"{resume['re_executed']} re-executed"
        )

    cache = summary.get("cache")
    if cache is not None:
        lines.append(
            f"cache: {cache.get('hits', 0)} hits, {cache.get('misses', 0)} "
            f"misses, {cache.get('stores', 0)} stores, "
            f"{cache.get('corrupt_evictions', 0)} corrupt evictions"
        )

    vector = summary.get("vector")
    if vector is not None:
        reasons = vector.get("fallbacks") or {}
        reason_text = (
            " (" + ", ".join(f"{k}: {v}" for k, v in sorted(reasons.items())) + ")"
            if reasons
            else ""
        )
        lines.append(
            f"vector: {vector.get('kernel')}/{vector.get('cells')} cells on "
            f"the kernel, {len(vector.get('fallback_cells') or [])} object "
            f"fallback(s){reason_text}"
        )

    oracle = summary.get("oracle")
    if oracle is not None:
        failed = oracle.get("failed", 0)
        verdict = "clean" if not failed else f"{failed} FAILED"
        lines.append(f"oracle: {oracle.get('checked')} cells checked, {verdict}")
        for name in (oracle.get("failed_cells") or [])[:top]:
            lines.append(f"  FAIL {name}")

    fuzz = summary.get("fuzz")
    if fuzz is not None:
        lines.append(
            f"fuzz: budget {fuzz.get('budget')} over "
            f"{', '.join(fuzz.get('engines', []))}; "
            f"{fuzz.get('twins')} twins, "
            f"{len(fuzz.get('counterexamples', []))} counterexample(s), "
            f"{len(fuzz.get('parity_problems', []))} parity problem(s)"
        )

    live = summary.get("live")
    if live is not None:
        lines.append(
            f"live: {live.get('algorithm')} on {live.get('profile')} "
            f"({live.get('decisions')} decisions, "
            f"{live.get('decisions_per_s')}/s)"
        )
        for label, key in (
            ("decision latency", "decision_latency_ms"),
            ("detection delay", "detection_delay_ms"),
        ):
            dist = live.get(key)
            if dist:
                lines.append(
                    f"  {label}: p50 {dist['p50']} ms, p90 {dist['p90']} ms, "
                    f"p99 {dist['p99']} ms, max {dist['max']} ms "
                    f"(n={dist['count']})"
                )
        lines.append(
            f"  detector: {live.get('suspicions', 0)} suspicion(s), "
            f"{live.get('false_suspicions', 0)} false"
        )
        live_causal = live.get("causal")
        if live_causal:
            line = (
                f"  causal: max path {live_causal.get('max_path_length')} hops"
            )
            slowest = live_causal.get("slowest_decision")
            if slowest:
                line += (
                    f", slowest decision {1000 * slowest['wall_latency_s']:.1f}"
                    f" ms ({100 * slowest['retransmit_share']:.0f}% retransmit)"
                )
            lines.append(line)
            for problem in live_causal.get("anomalies", []):
                lines.append(f"  CAUSAL ANOMALY: {problem}")

    causal = summary.get("causal")
    if causal:
        max_hops = max(
            (cell["max_path_length"] for cell in causal["cells"]), default=0
        )
        lines.append(
            f"causal: {len(causal['cells'])} cells analyzed, "
            f"max path {max_hops} hops, "
            f"{len(causal['anomaly_cells'])} anomalous"
        )
        for name in causal["anomaly_cells"][:top]:
            lines.append(f"  ANOMALY {name}")
        if causal.get("warning"):
            lines.append(f"  WARNING: {causal['warning']}")

    spans = summary.get("spans")
    if spans:
        lines.append("spans:")
        lines.extend(_span_tree_lines(spans))

    slowest = summary.get("slowest_cells") or []
    if slowest:
        lines.append(f"slowest cells (top {min(top, len(slowest))}):")
        for entry in slowest[:top]:
            lines.append(
                f"  {entry['cell']:<40} {entry['duration_s'] * 1000:9.2f} ms"
            )

    verdicts = summary.get("slo_verdicts") or []
    if verdicts:
        overall = all(v.get("ok") for v in verdicts)
        lines.append(f"SLO: {'PASS' if overall else 'FAIL'}")
        lines.extend(_verdict_lines(verdicts))

    return "\n".join(lines)


def report_json(run: RunDir) -> dict[str, Any]:
    """The machine form of the dashboard: manifest + summary + progress.

    A run whose campaign has not finalized yet (no ``summary.json``) is
    reported as a *partial* document with ``in_progress: true`` — the
    consumer decides whether partial is acceptable, instead of the
    report crashing on a perfectly healthy mid-campaign run.
    """
    from repro.obs.progress import latest_progress

    summary = run.summary()
    return {
        "manifest": run.manifest,
        "summary": summary,
        "progress": latest_progress(run.progress_records()),
        "in_progress": summary is None,
    }


def render_top(run: RunDir) -> str:
    """One ``repro top`` frame for a (possibly still running) campaign."""
    from repro.obs.progress import latest_progress

    manifest = run.manifest
    lines = [
        f"run {run.run_id} ({manifest.get('kind')}, "
        f"status {manifest.get('status')}, leg {manifest.get('legs', 1)}) — "
        f"{manifest.get('name')}"
    ]
    last = latest_progress(run.progress_records())
    if last is None:
        lines.append("  no heartbeats yet")
        return "\n".join(lines)
    eta = last.get("eta_s")
    verdicts = last.get("verdicts") or {}
    verdict_text = (
        " " + " ".join(f"{k}={v}" for k, v in sorted(verdicts.items()))
        if verdicts
        else ""
    )
    done, total = last.get("done", 0), last.get("total", 0)
    width = 30
    filled = round(width * done / total) if total else 0
    lines.append(
        f"  [{'#' * filled}{'.' * (width - filled)}] {done}/{total} "
        f"({last.get('cached', 0)} cached) {last.get('cells_per_s')} cells/s "
        f"eta {eta if eta is not None else '?'}s{verdict_text}"
    )
    return "\n".join(lines)


def find_run_dir(path: str | Path) -> Path:
    """Resolve ``path`` to a run directory.

    Accepts the run directory itself or a runs root containing exactly
    one run; a root with several runs raises with the candidate list
    (newest first) so the caller can pick.
    """
    path = Path(path)
    if (path / "manifest.json").exists():
        return path
    candidates = sorted(
        (entry for entry in path.glob("*/manifest.json")),
        key=lambda entry: entry.stat().st_mtime,
        reverse=True,
    )
    if len(candidates) == 1:
        return candidates[0].parent
    if not candidates:
        raise FileNotFoundError(f"{path}: no run directory (manifest.json) found")
    names = ", ".join(entry.parent.name for entry in candidates)
    raise FileNotFoundError(
        f"{path} holds {len(candidates)} runs ({names}); pass one explicitly"
    )
