"""Failure scenarios: the reified adversary of the round models.

A :class:`FailureScenario` captures every nondeterministic choice of a
round-model execution:

* which processes crash, in which round;
* which recipients a crashing process still managed to send to;
* whether a crashing process completed its transition (and could thus
  decide) before dying;
* which sent messages become *pending* (RWS only).

Scenarios are plain immutable data, independent of any algorithm.  That
is what lets :mod:`repro.rounds.enumeration` enumerate the complete
adversary space for small systems, turning the paper's worst-case /
best-case latency definitions into exact computations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScenarioError


@dataclass(frozen=True)
class CrashEvent:
    """The crash of one process.

    Attributes:
        pid: The crashing process.
        round: The 1-based round during which it crashes.  ``round=1``
            with ``sent_to=()`` and ``applies_transition=False`` is an
            *initially dead* process.
        sent_to: Recipients (other than itself) that its round-``round``
            messages actually reached the network for.  A crash in the
            middle of a broadcast reaches an arbitrary subset — this is
            the subset.
        applies_transition: Whether the process completed the round's
            receive/transition phase before crashing.  Only a process
            that finished all its sends may do so, hence this requires
            ``sent_to`` to be all other processes.  A process that
            applies its transition can *decide and then crash* — the
            scenario at the heart of uniform (vs plain) agreement.
    """

    pid: int
    round: int
    sent_to: frozenset[int] = frozenset()
    applies_transition: bool = False

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ScenarioError(
                f"crash round must be >= 1, got {self.round} for p{self.pid}"
            )
        if self.pid in self.sent_to:
            raise ScenarioError(
                f"sent_to of p{self.pid} must not contain itself"
            )


@dataclass(frozen=True)
class PendingMessage:
    """A message sent in ``round`` from ``sender`` to ``recipient`` that
    is never delivered (RWS only)."""

    sender: int
    recipient: int
    round: int

    def __post_init__(self) -> None:
        if self.sender == self.recipient:
            raise ScenarioError("a self-addressed message cannot be pending")
        if self.round < 1:
            raise ScenarioError("pending round must be >= 1")


def _last_completed_round(event: CrashEvent) -> int:
    """The last round whose transition the crashing process applies.

    A process crashing in round ``r`` completes round ``r`` when it
    applies that round's transition, and round ``r - 1`` otherwise.
    """
    return event.round if event.applies_transition else event.round - 1


@dataclass(frozen=True)
class FailureScenario:
    """A complete adversary decision for one round-model run."""

    n: int
    crashes: tuple[CrashEvent, ...] = ()
    pending: frozenset[PendingMessage] = frozenset()

    def __post_init__(self) -> None:
        # Canonical crash order (by pid): the adversary's choices are a
        # *set* of events, so equality and hashing must not depend on
        # construction order.
        object.__setattr__(
            self,
            "crashes",
            tuple(sorted(self.crashes, key=lambda event: event.pid)),
        )
        object.__setattr__(self, "pending", frozenset(self.pending))

    # -- queries --------------------------------------------------------------

    def crash_of(self, pid: int) -> CrashEvent | None:
        for event in self.crashes:
            if event.pid == pid:
                return event
        return None

    def crash_round(self, pid: int) -> int | None:
        event = self.crash_of(pid)
        return event.round if event is not None else None

    @property
    def faulty(self) -> frozenset[int]:
        return frozenset(event.pid for event in self.crashes)

    @property
    def correct(self) -> frozenset[int]:
        return frozenset(range(self.n)) - self.faulty

    def num_failures(self) -> int:
        return len(self.crashes)

    def alive_at_start(self, pid: int, round_index: int) -> bool:
        """True iff ``pid`` begins round ``round_index`` (1-based)."""
        crash = self.crash_round(pid)
        return crash is None or crash >= round_index

    def alive_at_end(self, pid: int, round_index: int) -> bool:
        """True iff ``pid`` completes round ``round_index``.

        A process crashing in round ``r`` with ``applies_transition``
        counts as completing round ``r`` (it observed the round's full
        message vector) but not as beginning round ``r+1``.
        """
        event = self.crash_of(pid)
        if event is None or event.round > round_index:
            return True
        if event.round == round_index:
            return event.applies_transition
        return False

    def sends_reach(self, sender: int, recipient: int, round_index: int) -> bool:
        """Whether a live ``sender``'s round-``round_index`` message to
        ``recipient`` reaches the network.

        Encodes the crash-mid-broadcast rule both executors share: a
        process crashing this round only reaches the recipients in its
        ``sent_to`` set, and its self-addressed message exists only if
        it lives long enough to read it (``applies_transition``).  The
        caller guarantees the sender is alive at the round's start.
        """
        crash = self.crash_of(sender)
        if crash is None or crash.round != round_index:
            return True
        if recipient == sender:
            return crash.applies_transition
        return recipient in crash.sent_to

    def withholds(self, sender: int, recipient: int, round_index: int) -> bool:
        """Whether a sent message is withheld this round (RWS pending)."""
        return (
            sender != recipient
            and PendingMessage(sender, recipient, round_index) in self.pending
        )

    def initially_dead(self) -> frozenset[int]:
        return frozenset(
            event.pid
            for event in self.crashes
            if event.round == 1
            and not event.sent_to
            and not event.applies_transition
        )

    def describe(self) -> str:
        if not self.crashes and not self.pending:
            return "failure-free"
        parts = []
        for event in sorted(self.crashes, key=lambda e: e.pid):
            extra = "+trans" if event.applies_transition else ""
            parts.append(
                f"p{event.pid}@r{event.round}"
                f"(sent={sorted(event.sent_to)}{extra})"
            )
        for pend in sorted(self.pending, key=lambda m: (m.round, m.sender)):
            parts.append(
                f"pend(r{pend.round}:{pend.sender}->{pend.recipient})"
            )
        return ", ".join(parts)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def failure_free(cls, n: int) -> "FailureScenario":
        return cls(n=n)

    @classmethod
    def initially_dead_set(cls, n: int, pids: frozenset[int] | set[int]) -> "FailureScenario":
        return cls(
            n=n,
            crashes=tuple(
                CrashEvent(pid=pid, round=1) for pid in sorted(pids)
            ),
        )


def validate_scenario(
    scenario: FailureScenario,
    *,
    t: int,
    allow_pending: bool,
    horizon: int | None = None,
) -> list[str]:
    """Check a scenario's internal consistency and model admissibility.

    Returns a list of violation messages (empty when valid):

    * no duplicate crashes, pids in range, at most ``t`` crashes;
    * ``applies_transition`` only after a complete send;
    * RS scenarios must have no pending messages;
    * every pending message must actually be *sent* (its sender is alive
      in that round and, if crashing that round, included the recipient
      in ``sent_to``);
    * **weak round synchrony**: a message pending towards a process
      alive at the end of its round forces the sender to crash by the
      end of the following round.
    """
    problems: list[str] = []
    n = scenario.n
    seen: set[int] = set()
    for event in scenario.crashes:
        if not 0 <= event.pid < n:
            problems.append(f"crash of unknown process {event.pid}")
            continue
        if event.pid in seen:
            problems.append(f"process {event.pid} crashes twice")
        seen.add(event.pid)
        if any(not 0 <= q < n for q in event.sent_to):
            problems.append(
                f"p{event.pid} sent_to references unknown processes"
            )
        full = frozenset(range(n)) - {event.pid}
        if event.applies_transition and event.sent_to != full:
            problems.append(
                f"p{event.pid} applies its transition without having "
                "completed its sends"
            )
        if horizon is not None and event.round > horizon + 1:
            problems.append(
                f"p{event.pid} crashes in round {event.round}, beyond the "
                f"horizon {horizon}"
            )
    if len(seen) > t:
        problems.append(
            f"{len(seen)} crashes exceed the resilience bound t={t}"
        )
    if len(seen) >= n:
        problems.append("at least one process must be correct")

    if scenario.pending and not allow_pending:
        problems.append("pending messages are not allowed in the RS model")

    for pend in scenario.pending:
        if not (0 <= pend.sender < n and 0 <= pend.recipient < n):
            problems.append(f"pending message references unknown processes")
            continue
        sender_crash = scenario.crash_of(pend.sender)
        # The message must have been sent at all.
        if sender_crash is not None:
            if sender_crash.round < pend.round:
                problems.append(
                    f"pending message in round {pend.round} from p"
                    f"{pend.sender}, which crashed in round "
                    f"{sender_crash.round} and sent nothing"
                )
                continue
            if (
                sender_crash.round == pend.round
                and pend.recipient not in sender_crash.sent_to
            ):
                problems.append(
                    f"pending message r{pend.round}:{pend.sender}->"
                    f"{pend.recipient} was never sent (recipient outside "
                    "the crash's sent_to)"
                )
                continue
        # Weak round synchrony.
        if scenario.alive_at_end(pend.recipient, pend.round):
            if sender_crash is None or sender_crash.round > pend.round + 1:
                problems.append(
                    "weak round synchrony violated: message "
                    f"r{pend.round}:{pend.sender}->{pend.recipient} is "
                    f"pending towards a live process but the sender does "
                    f"not crash by round {pend.round + 1}"
                )
            elif _last_completed_round(sender_crash) > pend.round:
                # In the SP emulation the recipient's suspicion proves the
                # sender crashed before the recipient finished round
                # ``pend.round`` — and the sender can only complete a
                # *later* round's transition after receiving that
                # recipient's message from the later round, which is sent
                # even later.  So the sender may still send in round
                # ``pend.round + 1`` but can never apply its transition.
                problems.append(
                    "emulation-impossible scenario: message "
                    f"r{pend.round}:{pend.sender}->{pend.recipient} is "
                    f"pending towards a live process, yet the sender "
                    "completes a transition after that round"
                )
    return problems
