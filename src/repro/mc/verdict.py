"""Machine-checked verdicts and replayable witnesses.

A :class:`Verdict` is the checker's durable output: which property was
checked over which bounded space, whether it ``HOLDS`` or is
``REFUTED``, the *scope* of the claim (``"exhaustive"`` for closed
schedule/Λ frontiers, ``"grid"`` for the sampled emulation grids), and
the frontier statistics that justify it — states visited, revisits and
dominated schedules pruned, leaves executed.  Verdicts JSON round-trip
(``to_dict``/``from_dict``) so runs can archive and diff them.

A ``REFUTED`` verdict embeds witnesses in the *fuzz counterexample
format* (plus a ``"property"`` field naming what they refute): the
same schema ``repro fuzz --out`` emits, so a witness written to disk
replays through ``repro replay --repro FILE`` and loads with
:func:`repro.fuzz.campaign.load_counterexample` — the checker is a
client of the existing counterexample pipeline, not a fourth format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.fuzz.campaign import REPRO_KIND, REPRO_SCHEMA
from repro.inject import active_injection
from repro.runtime.request import ExecutionRequest

#: Verdict file format marker.
VERDICT_KIND = "mc-verdict"
VERDICT_SCHEMA = 1


@dataclass
class Verdict:
    """One property's machine-checked verdict over one bounded space."""

    property_name: str
    holds: bool
    scope: str  # "exhaustive" | "grid"
    algorithm: str
    n: int
    t: int
    model: str | None
    horizon: int
    engine: str
    reduce: bool
    stats: dict[str, Any] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)
    witnesses: list[dict[str, Any]] = field(default_factory=list)

    @property
    def label(self) -> str:
        """The headline: ``HOLDS(exhaustive)``, ``HOLDS(grid)``, ``REFUTED``."""
        return f"HOLDS({self.scope})" if self.holds else "REFUTED"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": VERDICT_KIND,
            "schema": VERDICT_SCHEMA,
            "property": self.property_name,
            "verdict": self.label,
            "holds": self.holds,
            "scope": self.scope,
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "model": self.model,
            "horizon": self.horizon,
            "engine": self.engine,
            "reduce": self.reduce,
            "injected_bug": active_injection(),
            "stats": self.stats,
            "details": self.details,
            "problems": self.problems,
            "witnesses": self.witnesses,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Verdict":
        if data.get("kind") != VERDICT_KIND:
            raise ConfigurationError(
                f"not an {VERDICT_KIND} document (kind={data.get('kind')!r})"
            )
        return cls(
            property_name=data["property"],
            holds=data["holds"],
            scope=data["scope"],
            algorithm=data["algorithm"],
            n=data["n"],
            t=data["t"],
            model=data.get("model"),
            horizon=data["horizon"],
            engine=data["engine"],
            reduce=data.get("reduce", True),
            stats=dict(data.get("stats", {})),
            details=dict(data.get("details", {})),
            problems=list(data.get("problems", ())),
            witnesses=list(data.get("witnesses", ())),
        )

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), indent=2, sort_keys=True, default=repr
        )

    def describe(self) -> str:
        lines = [
            f"{self.property_name} [{self.algorithm} n={self.n} t={self.t}"
            + (f" {self.model}" if self.model else "")
            + f" horizon={self.horizon} engine={self.engine}"
            + ("" if self.reduce else " no-reduce")
            + f"]: {self.label}"
        ]
        stats = self.stats
        if stats:
            lines.append(
                "  frontier: "
                f"{stats.get('states_visited', 0)} states, "
                f"{stats.get('leaves', stats.get('cells', 0))} leaves/cells, "
                f"{stats.get('revisit_pruned', 0)} revisits pruned, "
                f"{stats.get('dominance_pruned', 0)} dominated choices pruned"
            )
        for key, value in sorted(self.details.items()):
            lines.append(f"  {key}: {value}")
        lines.extend(f"  {problem}" for problem in self.problems)
        if self.witnesses:
            lines.append(
                f"  {len(self.witnesses)} witness(es) "
                "(fuzz-counterexample format; replay with "
                "`repro replay --repro FILE`)"
            )
        return "\n".join(lines)


def witness_document(
    *,
    property_name: str,
    original: ExecutionRequest,
    shrunk: ExecutionRequest,
    problems: list[str],
    shrink_attempts: int = 0,
) -> dict[str, Any]:
    """A REFUTED witness in the fuzz counterexample format.

    ``kind``/``schema``/``request`` fields match ``repro fuzz --out``
    files exactly, so the document replays via ``repro replay --repro``
    and loads with the existing loader; the extra ``property`` field
    records which checker property the run refutes.
    """
    return {
        "kind": REPRO_KIND,
        "schema": REPRO_SCHEMA,
        "property": property_name,
        "injected_bug": active_injection(),
        "oracles": [f"mc:{property_name}"],
        "problems": [
            {"oracle": f"mc:{property_name}", "problems": list(problems)}
        ],
        "request": shrunk.to_dict(),
        "original": original.to_dict(),
        "shrink_attempts": shrink_attempts,
    }
