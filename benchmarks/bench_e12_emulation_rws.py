"""E12 — RWS emulated on SP: Lemma 4.1, non-vacuously."""

import random

from repro.consensus import FloodSetWS
from repro.core.experiments import experiment_e12
from repro.emulation import (
    check_emulated_weak_round_synchrony,
    count_pending_messages,
    emulate_rws_on_sp,
)
from repro.failures import FailurePattern


def bench_e12_full_experiment(once):
    result = once(experiment_e12, True)
    assert result.ok, result.describe()


def bench_e12_one_emulated_execution(benchmark):
    def emulated():
        rng = random.Random(11)
        pattern = FailurePattern.with_crashes(3, {0: 7})
        return emulate_rws_on_sp(
            FloodSetWS(), [0, 1, 1], pattern, t=1, num_rounds=2, rng=rng,
            max_detection_delay=2, delivery_prob=0.15, max_age=80,
        )

    trace = benchmark(emulated)
    assert check_emulated_weak_round_synchrony(trace) == []
    benchmark.extra_info["pending"] = count_pending_messages(trace)
