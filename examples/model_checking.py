"""Model checking: find the paper's counterexamples from scratch.

The library reifies every adversary choice (crash rounds, partial
broadcasts, pending messages) as data, so the complete run space of a
small system is enumerable.  This example lets the enumerator rediscover
the counterexamples the paper constructs by hand — FloodSet's and A1's
RWS disagreements — and then certifies the repaired algorithms over the
same space.

Run:  python examples/model_checking.py
"""

from repro import (
    A1,
    FloodSet,
    FloodSetWS,
    RoundModel,
    check_uniform_consensus_run,
    verify_algorithm,
)
from repro.analysis import explore_runs
from repro.consensus.candidates import ROUND_ONE_CANDIDATES
from repro.analysis import refute_round_one_decision
from repro.trace import describe_round_run, round_tableau


def first_counterexample(algorithm, model):
    """Scan the exhaustive run space for the first spec violation."""
    for run in explore_runs(algorithm, 3, 1, model):
        if check_uniform_consensus_run(run):
            return run
    return None


def main() -> None:
    print("=== rediscovering the FloodSet counterexample in RWS ===")
    run = first_counterexample(FloodSet(), RoundModel.RWS)
    print(describe_round_run(run))
    print(round_tableau(run))
    print()

    print("=== rediscovering the A1 counterexample in RWS ===")
    run = first_counterexample(A1(), RoundModel.RWS)
    print(describe_round_run(run))
    print(round_tableau(run))
    print()

    print("=== certifying the repaired algorithm over the full space ===")
    report = verify_algorithm(FloodSetWS(), 3, 1, RoundModel.RWS)
    print(report.describe())
    print()

    print("=== the Λ >= 2 lower bound, experimentally ===")
    print(
        "Every candidate that decides at round 1 of all failure-free RWS\n"
        "runs must lose uniform agreement somewhere (companion paper [7]):\n"
    )
    for candidate in ROUND_ONE_CANDIDATES:
        verdict = refute_round_one_decision(candidate, 3, 1)
        print(" ", verdict.describe())


if __name__ == "__main__":
    main()
