"""The uniform atomic broadcast specification.

Clauses (uniform variants, over *all* processes' delivery sequences —
faulty ones included, which is what makes the RWS anomaly visible):

* **Uniform integrity** — every message is delivered at most once, and
  only if some process broadcast it.
* **Uniform total order** — any two delivery sequences are
  prefix-compatible (one is a prefix of the other).  Together with
  integrity this subsumes uniform agreement on delivered messages up to
  the shorter sequence.
* **Validity** — every message broadcast by a correct process is
  delivered by every correct process (horizon-relative: callers must
  run enough instances; two suffice for messages known at the start).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broadcast.algorithm import BroadcastState
from repro.rounds.executor import RoundRun


@dataclass(frozen=True)
class BroadcastViolation:
    """One violated atomic-broadcast clause on one run."""

    clause: str
    detail: str
    scenario: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.clause}] {self.detail} (scenario={self.scenario})"


def _sequences(run: RoundRun) -> dict[int, tuple]:
    return {
        pid: state.delivered
        for pid, state in run.final_states.items()
        if isinstance(state, BroadcastState)
    }


def check_atomic_broadcast_run(run: RoundRun) -> list[BroadcastViolation]:
    """Check one finished run against the atomic broadcast spec."""
    violations: list[BroadcastViolation] = []
    scenario_text = run.scenario.describe()

    def flag(clause: str, detail: str) -> None:
        violations.append(
            BroadcastViolation(
                clause=clause, detail=detail, scenario=scenario_text
            )
        )

    sequences = _sequences(run)
    broadcast_messages = {
        message for values in run.values for message in values
    }

    # Uniform integrity.
    for pid, sequence in sequences.items():
        if len(set(sequence)) != len(sequence):
            flag(
                "uniform integrity",
                f"p{pid} delivered a message twice: {sequence}",
            )
        for message in sequence:
            if message not in broadcast_messages:
                flag(
                    "uniform integrity",
                    f"p{pid} delivered {message!r}, which nobody broadcast",
                )

    # Uniform total order (prefix compatibility, all pairs).
    pids = sorted(sequences)
    for i, p in enumerate(pids):
        for q in pids[i + 1:]:
            a, b = sequences[p], sequences[q]
            shorter = min(len(a), len(b))
            if a[:shorter] != b[:shorter]:
                flag(
                    "uniform total order",
                    f"p{p} delivered {a} but p{q} delivered {b}",
                )

    # Validity: correct broadcasters' messages reach every correct process.
    correct = run.scenario.correct
    owed = {
        message
        for pid in correct
        for message in run.values[pid]
    }
    for pid in correct:
        missing = owed - set(sequences.get(pid, ()))
        if missing:
            flag(
                "validity",
                f"correct p{pid} never delivered {sorted(missing, key=repr)}",
            )
    return violations
