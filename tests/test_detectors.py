"""Tests for the failure-detector hierarchy and its axiom checkers."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.failures import (
    DETECTOR_CLASSES,
    ConstantHistory,
    FailurePattern,
    FunctionHistory,
    PerfectDetector,
    TableHistory,
    check_eventual_strong_accuracy,
    check_eventual_weak_accuracy,
    check_strong_accuracy,
    check_strong_completeness,
    check_weak_accuracy,
    check_weak_completeness,
    classify_history,
)

HORIZON = 120

PATTERNS = [
    FailurePattern.crash_free(4),
    FailurePattern.with_crashes(4, {1: 10}),
    FailurePattern.with_crashes(4, {0: 0, 2: 30}),
]


class TestHistories:
    def test_constant_history(self):
        history = ConstantHistory({1, 2})
        assert history.suspects(0, 0) == frozenset({1, 2})
        assert history.suspects(3, 99) == frozenset({1, 2})

    def test_function_history(self):
        history = FunctionHistory(lambda pid, t: {pid} if t > 5 else set())
        assert history.suspects(2, 3) == frozenset()
        assert history.suspects(2, 6) == frozenset({2})

    def test_table_history_persists_last_entry(self):
        history = TableHistory({(0, 3): {1}})
        assert history.suspects(0, 2) == frozenset()
        assert history.suspects(0, 3) == frozenset({1})
        assert history.suspects(0, 10) == frozenset({1})

    def test_table_history_backfills_between_entries(self):
        history = TableHistory({(0, 2): {1}, (0, 8): set()})
        assert history.suspects(0, 5) == frozenset({1})
        assert history.suspects(0, 9) == frozenset()

    def test_suspects_at_returns_all_processes(self):
        history = ConstantHistory({0})
        snapshot = history.suspects_at(4, 3)
        assert set(snapshot) == {0, 1, 2}


class TestHierarchyAxioms:
    """Every detector class satisfies exactly its advertised axioms."""

    @pytest.mark.parametrize("name", sorted(DETECTOR_CLASSES))
    @pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.describe())
    @pytest.mark.parametrize("seed", [None, 1, 2])
    def test_class_matches_own_axioms(self, name, pattern, seed):
        detector = DETECTOR_CLASSES[name]()
        rng = random.Random(seed) if seed is not None else None
        history = detector.history(pattern, horizon=HORIZON, rng=rng)
        report = classify_history(history, pattern, HORIZON)
        assert report.matches_class(name), (
            f"{name} produced a history violating its own axioms for "
            f"{pattern.describe()}: {report}"
        )

    def test_perfect_has_strong_accuracy_at_every_time(self):
        pattern = FailurePattern.with_crashes(3, {1: 20})
        history = PerfectDetector(max_delay=10).history(
            pattern, horizon=HORIZON, rng=random.Random(5)
        )
        assert check_strong_accuracy(history, pattern, HORIZON)

    def test_perfect_detection_delay_is_bounded(self):
        pattern = FailurePattern.with_crashes(3, {1: 20})
        detector = PerfectDetector(max_delay=7)
        history = detector.history(pattern, horizon=HORIZON, rng=random.Random(5))
        assert 1 in history.suspects(0, 20 + 7)

    def test_perfect_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            PerfectDetector(max_delay=-1)

    def test_strong_detector_requires_a_correct_process(self):
        everyone_dies = FailurePattern.with_crashes(2, {0: 0, 1: 0})
        with pytest.raises(ConfigurationError):
            DETECTOR_CLASSES["S"]().history(everyone_dies, horizon=10)


class TestAxiomCheckersCatchViolations:
    def test_empty_history_fails_completeness_when_crash_occurs(self):
        pattern = FailurePattern.with_crashes(3, {1: 5})
        history = ConstantHistory(set())
        assert not check_strong_completeness(history, pattern, HORIZON)
        assert not check_weak_completeness(history, pattern, HORIZON)

    def test_empty_history_is_trivially_complete_without_crashes(self):
        pattern = FailurePattern.crash_free(3)
        history = ConstantHistory(set())
        assert check_strong_completeness(history, pattern, HORIZON)

    def test_premature_suspicion_fails_strong_accuracy(self):
        pattern = FailurePattern.with_crashes(3, {1: 50})
        history = ConstantHistory({1})  # suspected from time 0 < 50
        assert not check_strong_accuracy(history, pattern, HORIZON)

    def test_suspecting_everyone_fails_weak_accuracy(self):
        pattern = FailurePattern.crash_free(3)
        history = ConstantHistory({0, 1, 2})
        assert not check_weak_accuracy(history, pattern, HORIZON)

    def test_weak_accuracy_needs_one_unsuspected_correct(self):
        pattern = FailurePattern.crash_free(3)
        history = ConstantHistory({0, 1})  # p2 never suspected
        assert check_weak_accuracy(history, pattern, HORIZON)

    def test_eventual_strong_accuracy_ignores_early_chaos(self):
        pattern = FailurePattern.crash_free(2)
        history = FunctionHistory(
            lambda pid, t: {1 - pid} if t < 10 else set()
        )
        assert check_eventual_strong_accuracy(history, pattern, HORIZON)
        assert not check_strong_accuracy(history, pattern, HORIZON)

    def test_eventual_weak_accuracy_at_horizon(self):
        pattern = FailurePattern.crash_free(2)
        history = ConstantHistory({0})
        assert check_eventual_weak_accuracy(history, pattern, HORIZON)

    def test_permanence_required_for_completeness(self):
        # Suspicion that is dropped before the horizon is not permanent.
        pattern = FailurePattern.with_crashes(2, {0: 5})
        history = FunctionHistory(
            lambda pid, t: {0} if 5 <= t < 50 else set()
        )
        assert not check_strong_completeness(history, pattern, HORIZON)

    def test_classify_reports_violation_text(self):
        pattern = FailurePattern.with_crashes(2, {0: 5})
        report = classify_history(ConstantHistory(set()), pattern, HORIZON)
        assert report.violations

    def test_matches_class_unknown_name_raises(self):
        pattern = FailurePattern.crash_free(2)
        report = classify_history(ConstantHistory(set()), pattern, 10)
        with pytest.raises(KeyError):
            report.matches_class("X")


class TestHierarchyOrdering:
    """P's histories satisfy every weaker class (the hierarchy order)."""

    @pytest.mark.parametrize("weaker", ["<>P", "S", "<>S", "Q", "<>Q"])
    def test_perfect_history_satisfies_weaker_classes(self, weaker):
        pattern = FailurePattern.with_crashes(4, {2: 15})
        history = PerfectDetector(max_delay=5).history(
            pattern, horizon=HORIZON, rng=random.Random(3)
        )
        report = classify_history(history, pattern, HORIZON)
        assert report.matches_class("P")
        assert report.matches_class(weaker)
