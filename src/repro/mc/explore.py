"""Breadth-first frontier expansion over the round-model adversary.

The exploration walks configurations level by level (one level per
round).  Expanding a configuration enumerates every admissible
adversary choice for the next round — which alive processes crash,
with which completed-send sets and transition flags, and (RWS) which
sent messages become pending — steps the algorithm through the choice,
and canonicalizes the successor.  Three reductions keep the frontier
small, each with an explicit soundness argument:

* **Canonical state hashing** (:mod:`repro.mc.config`): deterministic
  algorithms + a memoryless adversary mean equal configurations have
  equal futures, so a revisited canonical key prunes the whole
  subtree.  The kept path's leaf evaluates the same properties the
  pruned paths' leaves would (decisions of crashed processes are part
  of the configuration).
* **Symmetry** (:mod:`repro.mc.symmetry`): orbit representatives under
  the algorithm's declared process-id / value symmetries.
* **Scenario dominance**: adversary choices that only differ in
  unobservable bits are collapsed onto one canonical choice —
  ``sent_to`` members the crashing process never actually addressed,
  deliveries and withholds towards processes that do not complete the
  round, and crashes after global quiescence.  None of these enter any
  completing process's causal cone (the delivered-message vectors of
  every transitioning process are identical), so by the Theorem 3.1
  argument the runs are indistinguishable to every process whose
  decisions the properties quantify over; ``tests/test_mc_explore.py``
  certifies representative prunes with
  :func:`repro.obs.causal.cone_signature` equality.

``reduce=False`` (the CLI's ``--no-reduce``) disables all three and
enumerates the full admissible space in the style of
:func:`repro.rounds.enumeration.all_scenarios` — the executable twin
whose verdicts the reduced mode must (and is tested to) reproduce.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.mc.config import Configuration, canonical_form, value_sort_key
from repro.mc.symmetry import TRIVIAL, orbit_canonical, symmetry_for
from repro.rounds.scenario import CrashEvent, FailureScenario, PendingMessage
from repro.runtime.registry import make_algorithm


@dataclass
class Leaf:
    """One representative complete run of the reduced schedule set."""

    values: tuple
    scenario: FailureScenario
    decisions: dict[int, tuple[int, Any]]
    rounds: int

    def key(self) -> tuple:
        return (self.values, self.scenario)


@dataclass
class ExploreStats:
    """Frontier statistics: the evidence behind ``HOLDS(exhaustive)``."""

    roots_total: int = 0
    roots_kept: int = 0
    states_generated: int = 0
    states_visited: int = 0
    revisit_pruned: int = 0
    dominance_pruned: int = 0
    choices_explored: int = 0
    leaves: int = 0
    quiescent_leaves: int = 0
    levels: list[int] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "roots_total": self.roots_total,
            "roots_kept": self.roots_kept,
            "states_generated": self.states_generated,
            "states_visited": self.states_visited,
            "revisit_pruned": self.revisit_pruned,
            "dominance_pruned": self.dominance_pruned,
            "choices_explored": self.choices_explored,
            "leaves": self.leaves,
            "quiescent_leaves": self.quiescent_leaves,
            "levels": list(self.levels),
        }


@dataclass
class Exploration:
    """The reduced run set plus the statistics that justify it."""

    algorithm: str
    n: int
    t: int
    model: str
    horizon: int
    reduce: bool
    leaves: list[Leaf]
    stats: ExploreStats


class _Node:
    __slots__ = ("config", "values", "crashes", "pending", "decisions")

    def __init__(self, config, values, crashes, pending, decisions):
        self.config = config
        self.values = values
        self.crashes = crashes
        self.pending = pending
        self.decisions = decisions


def _subsets(items: Sequence[int]) -> Iterator[frozenset[int]]:
    for size in range(len(items) + 1):
        for combo in itertools.combinations(items, size):
            yield frozenset(combo)


def _materialized_scenario(node: _Node, n: int) -> FailureScenario:
    """The node's full scenario, outstanding obligations included.

    An obligation ``(pid, deadline)`` still open at leaf time becomes a
    bare crash event in ``deadline`` — admissible (a crash is allowed
    one round past the horizon, exactly the weak-round-synchrony
    deadline of a final-round withhold) and unobservable (the engine
    never executes that round), so ``sent_to`` is canonically empty.
    """
    crashes = list(node.crashes)
    for pid, deadline in node.config.obligations:
        crashes.append(CrashEvent(pid=pid, round=deadline))
    return FailureScenario(
        n=n, crashes=tuple(crashes), pending=frozenset(node.pending)
    )


def explore(
    algorithm_key: str,
    *,
    n: int,
    t: int,
    model: str,
    horizon: int,
    reduce: bool = True,
    domain: tuple = (0, 1),
    max_states: int = 200_000,
) -> Exploration:
    """Exhaustively expand the bounded frontier; see the module docstring."""
    if model not in ("RS", "RWS"):
        raise ConfigurationError(f"model must be RS or RWS, got {model!r}")
    if not 1 <= t < n:
        raise ConfigurationError(f"need 1 <= t < n, got t={t}, n={n}")
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    algorithm = make_algorithm(algorithm_key)
    spec = symmetry_for(algorithm_key) if reduce else TRIVIAL
    allow_pending = model == "RWS"
    stats = ExploreStats()
    visited: set[str] = set()
    leaves: list[Leaf] = []

    def canonical(config: Configuration) -> str:
        if reduce:
            form, _rep = orbit_canonical(config, spec)
            return form
        return canonical_form(config)

    # -- roots ---------------------------------------------------------------
    frontier: list[_Node] = []
    for values in itertools.product(domain, repeat=n):
        stats.roots_total += 1
        states = tuple(
            algorithm.initial_state(pid, n, t, values[pid])
            for pid in range(n)
        )
        config = Configuration(
            round=0,
            states=states,
            decided=(),
            initial_values=tuple(sorted(set(values), key=value_sort_key)),
            obligations=(),
        )
        if reduce:
            form = canonical(config)
            if form in visited:
                stats.revisit_pruned += 1
                continue
            visited.add(form)
        stats.roots_kept += 1
        stats.states_visited += 1
        frontier.append(_Node(config, values, (), frozenset(), {}))

    # -- levels --------------------------------------------------------------
    for round_index in range(1, horizon + 1):
        next_frontier: list[_Node] = []
        for node in frontier:
            if _quiescent(algorithm, node.config):
                stats.quiescent_leaves += 1
                leaves.append(_leaf(node, n))
                continue
            for successor in _expand(
                node,
                round_index,
                algorithm=algorithm,
                n=n,
                t=t,
                allow_pending=allow_pending,
                reduce=reduce,
                stats=stats,
            ):
                stats.states_generated += 1
                if reduce:
                    form = canonical(successor.config)
                    if form in visited:
                        stats.revisit_pruned += 1
                        continue
                    visited.add(form)
                stats.states_visited += 1
                if stats.states_visited > max_states:
                    raise ConfigurationError(
                        f"frontier exceeded max_states={max_states} at "
                        f"round {round_index}; lower n/t/horizon or keep "
                        "reductions on"
                    )
                next_frontier.append(successor)
        stats.levels.append(len(next_frontier))
        frontier = next_frontier

    for node in frontier:
        leaves.append(_leaf(node, n))
    stats.leaves = len(leaves)
    return Exploration(
        algorithm=algorithm_key,
        n=n,
        t=t,
        model=model,
        horizon=horizon,
        reduce=reduce,
        leaves=leaves,
        stats=stats,
    )


def _leaf(node: _Node, n: int) -> Leaf:
    return Leaf(
        values=node.values,
        scenario=_materialized_scenario(node, n),
        decisions=dict(node.decisions),
        rounds=node.config.round,
    )


def _quiescent(algorithm, config: Configuration) -> bool:
    """Mirror of the executor's stop rule: every alive process halted."""
    alive = config.alive
    if not alive:
        return True
    return all(
        algorithm.halted(pid, config.states[pid]) for pid in alive
    )


def _expand(
    node: _Node,
    round_index: int,
    *,
    algorithm,
    n: int,
    t: int,
    allow_pending: bool,
    reduce: bool,
    stats: ExploreStats,
) -> Iterator[_Node]:
    config = node.config
    assert config.round == round_index - 1
    alive = list(config.alive)
    crashed_count = n - len(alive)
    obligations = dict(config.obligations)
    # Obligations are created one round ahead, so everything open now
    # is due now: the owed crash happens this round, transitionless.
    assert all(deadline == round_index for deadline in obligations.values())
    due = sorted(obligations)
    spare = t - crashed_count - len(due)
    assert spare >= 0

    msgs = {
        pid: dict(algorithm.messages(pid, config.states[pid]))
        for pid in alive
    }
    candidates = [pid for pid in alive if pid not in due]

    for extra_size in range(0, spare + 1):
        for extra in itertools.combinations(candidates, extra_size):
            crashers = due + list(extra)
            flag_options = [
                ((False,) if pid in due else (False, True))
                for pid in crashers
            ]
            for flags in itertools.product(*flag_options):
                flag_of = dict(zip(crashers, flags))
                observers = frozenset(
                    pid
                    for pid in alive
                    if pid not in flag_of or flag_of[pid]
                )
                yield from _choices_for_crash_set(
                    node,
                    round_index,
                    crashers=crashers,
                    flag_of=flag_of,
                    observers=observers,
                    algorithm=algorithm,
                    msgs=msgs,
                    alive=alive,
                    n=n,
                    t=t,
                    crashed_count=crashed_count,
                    allow_pending=allow_pending,
                    reduce=reduce,
                    stats=stats,
                )


def _choices_for_crash_set(
    node: _Node,
    round_index: int,
    *,
    crashers: list[int],
    flag_of: dict[int, bool],
    observers: frozenset[int],
    algorithm,
    msgs: dict[int, dict[int, Any]],
    alive: list[int],
    n: int,
    t: int,
    crashed_count: int,
    allow_pending: bool,
    reduce: bool,
    stats: ExploreStats,
) -> Iterator[_Node]:
    # sent_to choices per crasher.  Reduced mode only enumerates
    # subsets of the recipients the process actually addresses this
    # round *and* that complete the round — everything else is
    # unobservable (see module docstring).  The full-set + transition
    # variant is forced by the admissibility rule.
    sent_options: list[list[frozenset[int]]] = []
    for pid in crashers:
        others = [q for q in range(n) if q != pid]
        if flag_of[pid]:
            sent_options.append([frozenset(others)])
            continue
        if reduce:
            visible = sorted(
                q for q in msgs[pid] if q != pid and q in observers
            )
            stats.dominance_pruned += 2 ** len(others) - 2 ** len(visible)
            sent_options.append(list(_subsets(visible)))
        else:
            sent_options.append(list(_subsets(others)))

    for sent_sets in itertools.product(*sent_options):
        sent_of = dict(zip(crashers, sent_sets))
        # Messages that reach the network this round.
        sent_pairs = [
            (pid, q)
            for pid in alive
            for q in sorted(msgs[pid])
            if q != pid
            and (pid not in sent_of or q in sent_of[pid])
        ]
        if not allow_pending:
            stats.choices_explored += 1
            yield _apply_choice(
                node,
                round_index,
                crashers=crashers,
                flag_of=flag_of,
                sent_of=sent_of,
                withheld=frozenset(),
                new_obligors=(),
                algorithm=algorithm,
                msgs=msgs,
                alive=alive,
                n=n,
            )
            continue

        # Withhold choices (RWS).  A withhold towards a process that
        # does not complete the round is unobservable (pruned when
        # reducing); a withhold by a non-crashing sender towards a
        # completing recipient obliges the sender to crash next round
        # (weak round synchrony), which must fit the crash budget.
        if reduce:
            candidates = [
                (pid, q) for (pid, q) in sent_pairs if q in observers
            ]
            stats.dominance_pruned += len(sent_pairs) - len(candidates)
        else:
            candidates = sent_pairs
        budget_left = t - crashed_count - len(crashers)
        for withheld in _subsets(candidates):
            obligors = sorted(
                {
                    pid
                    for (pid, q) in withheld
                    if pid not in flag_of and q in observers
                }
            )
            if len(obligors) > budget_left:
                continue
            stats.choices_explored += 1
            yield _apply_choice(
                node,
                round_index,
                crashers=crashers,
                flag_of=flag_of,
                sent_of=sent_of,
                withheld=withheld,
                new_obligors=tuple(obligors),
                algorithm=algorithm,
                msgs=msgs,
                alive=alive,
                n=n,
            )


def _apply_choice(
    node: _Node,
    round_index: int,
    *,
    crashers: list[int],
    flag_of: dict[int, bool],
    sent_of: dict[int, frozenset[int]],
    withheld: frozenset[tuple[int, int]],
    new_obligors: tuple[int, ...],
    algorithm,
    msgs: dict[int, dict[int, Any]],
    alive: list[int],
    n: int,
) -> _Node:
    config = node.config
    # Delivery: mirrors the executor exactly, self-messages included
    # (a crashing process receives its own broadcast only when it
    # applies its transition).
    delivered: dict[int, dict[int, Any]] = {q: {} for q in alive}
    for pid in alive:
        for q, payload in msgs[pid].items():
            if q == pid:
                if pid in flag_of and not flag_of[pid]:
                    continue
            elif pid in sent_of and q not in sent_of[pid]:
                continue
            elif (pid, q) in withheld:
                continue
            if q in delivered:
                delivered[q][pid] = payload

    states = list(config.states)
    decisions = dict(node.decisions)
    decided = set(config.decided)
    for q in alive:
        completes = q not in flag_of or flag_of[q]
        if not completes:
            states[q] = None
            continue
        new_state = algorithm.transition(q, config.states[q], delivered[q])
        decision = algorithm.decision_of(new_state)
        if decision is not None and q not in decisions:
            decisions[q] = (round_index, decision)
            decided.add(decision)
        states[q] = None if q in flag_of else new_state

    crashes = list(node.crashes)
    for pid in crashers:
        crashes.append(
            CrashEvent(
                pid=pid,
                round=round_index,
                sent_to=sent_of[pid],
                applies_transition=flag_of[pid],
            )
        )
    pending = set(node.pending)
    for pid, q in withheld:
        pending.add(PendingMessage(pid, q, round_index))

    successor = Configuration(
        round=round_index,
        states=tuple(states),
        decided=tuple(sorted(decided, key=value_sort_key)),
        initial_values=config.initial_values,
        obligations=tuple(
            (pid, round_index + 1) for pid in new_obligors
        ),
    )
    return _Node(
        successor,
        node.values,
        tuple(crashes),
        frozenset(pending),
        decisions,
    )
