"""Unit tests for the Chandra–Toueg automaton's internal mechanics.

The end-to-end suite (test_fdconsensus.py) checks the theorem-level
properties; these tests pin down the phase machinery itself, driving
the automaton step by step with hand-built contexts.
"""

from __future__ import annotations

import pytest

from repro.fdconsensus.chandra_toueg import (
    ACK,
    AWAIT_PROPOSAL,
    COLLECT_REPLIES,
    COORDINATE,
    DECIDE,
    ESTIMATE,
    NACK,
    PROPOSE,
    SEND_ESTIMATE,
    ChandraTouegConsensus,
    CTState,
)
from repro.simulation.automaton import StepContext
from repro.simulation.message import Message


def make_algorithm(n=3, t=1, values=(5, 6, 7)):
    return ChandraTouegConsensus(n, t, list(values))


def ctx(algorithm, pid, state, received=(), suspects=frozenset()):
    messages = tuple(
        Message(uid=i, sender=sender, recipient=pid, payload=payload,
                sent_step=0)
        for i, (sender, payload) in enumerate(received)
    )
    return StepContext(
        pid=pid,
        n=algorithm.n,
        state=state,
        received=messages,
        local_step=1,
        suspects=suspects,
    )


def drive(algorithm, pid, state, received=(), suspects=frozenset()):
    """One step; returns (new_state, sent (recipient, payload) or None)."""
    outcome = algorithm.on_step(ctx(algorithm, pid, state, received, suspects))
    sent = (
        (outcome.send_to, outcome.payload)
        if outcome.send_to is not None
        else None
    )
    return outcome.state, sent


class TestPhaseOne:
    def test_non_coordinator_sends_estimate_to_coordinator(self):
        algorithm = make_algorithm()
        state = algorithm.initial_state(1, 3)
        state, sent = drive(algorithm, 1, state)
        assert sent == (0, (ESTIMATE, 1, 6, 0))
        assert state.phase == AWAIT_PROPOSAL

    def test_coordinator_self_delivers_estimate(self):
        algorithm = make_algorithm()
        state = algorithm.initial_state(0, 3)
        state, sent = drive(algorithm, 0, state)
        assert sent is None  # its own estimate is filed internally
        assert state.phase == COORDINATE
        assert state.estimates[1][0] == (5, 0)


class TestCoordinatorPhase:
    def build_coordinator_awaiting(self):
        algorithm = make_algorithm()
        state = algorithm.initial_state(0, 3)
        state, _ = drive(algorithm, 0, state)
        return algorithm, state

    def test_waits_below_majority(self):
        algorithm, state = self.build_coordinator_awaiting()
        state, sent = drive(algorithm, 0, state)
        assert sent is None
        assert state.phase == COORDINATE  # still waiting (1 < 2)

    def test_proposes_highest_timestamp_on_majority(self):
        algorithm, state = self.build_coordinator_awaiting()
        # p1's estimate has a newer timestamp: it must win.
        state, sent = drive(
            algorithm, 0, state, received=[(1, (ESTIMATE, 1, 9, 1))]
        )
        # Coordinator picked 9 and queued proposals; first send drained.
        assert state.proposals[1] == 9
        assert sent is not None
        recipient, payload = sent
        assert payload == (PROPOSE, 1, 9)

    def test_timestamp_tie_breaks_by_lowest_sender(self):
        algorithm, state = self.build_coordinator_awaiting()
        state, _ = drive(
            algorithm, 0, state, received=[(2, (ESTIMATE, 1, 7, 0))]
        )
        # Both candidates have ts 0; p0's own (sender 0) wins the tie.
        assert state.proposals[1] == 5


class TestAwaitProposal:
    def build_waiting_participant(self):
        algorithm = make_algorithm()
        state = algorithm.initial_state(1, 3)
        state, _ = drive(algorithm, 1, state)  # sent estimate
        return algorithm, state

    def test_adopts_proposal_and_acks(self):
        algorithm, state = self.build_waiting_participant()
        state, sent = drive(
            algorithm, 1, state, received=[(0, (PROPOSE, 1, 5))]
        )
        assert state.estimate == 5
        assert state.ts == 1
        assert sent == (0, (ACK, 1))
        assert state.round == 2
        assert state.phase == SEND_ESTIMATE

    def test_nacks_on_suspicion(self):
        algorithm, state = self.build_waiting_participant()
        state, sent = drive(algorithm, 1, state, suspects=frozenset({0}))
        assert sent == (0, (NACK, 1))
        assert state.estimate == 6  # unchanged
        assert state.round == 2

    def test_waits_without_proposal_or_suspicion(self):
        algorithm, state = self.build_waiting_participant()
        state, sent = drive(algorithm, 1, state)
        assert sent is None
        assert state.round == 1
        assert state.phase == AWAIT_PROPOSAL


class TestCollectReplies:
    def build_collecting_coordinator(self):
        algorithm = make_algorithm()
        state = algorithm.initial_state(0, 3)
        state, _ = drive(algorithm, 0, state)
        state, _ = drive(
            algorithm, 0, state, received=[(1, (ESTIMATE, 1, 6, 0))]
        )
        # Drain the second queued proposal send.
        state, _ = drive(algorithm, 0, state)
        # Deliver the proposal to itself (self-handling path).
        assert state.phase == AWAIT_PROPOSAL
        state, _ = drive(algorithm, 0, state)  # adopts own proposal, acks self
        assert state.phase == COLLECT_REPLIES
        return algorithm, state

    def test_decides_on_majority_acks(self):
        algorithm, state = self.build_collecting_coordinator()
        state, sent = drive(algorithm, 0, state, received=[(1, (ACK, 1))])
        assert state.decided
        assert state.decision == 5
        assert sent is not None and sent[1][0] == DECIDE

    def test_moves_on_after_nacks(self):
        algorithm, state = self.build_collecting_coordinator()
        state, _ = drive(algorithm, 0, state, received=[(1, (NACK, 1))])
        assert not state.decided
        assert state.round == 2
        assert state.phase == SEND_ESTIMATE


class TestDecideHandling:
    def test_decide_message_adopted_and_relayed(self):
        algorithm = make_algorithm()
        state = algorithm.initial_state(2, 3)
        state, sent = drive(algorithm, 2, state, received=[(0, (DECIDE, 5))])
        assert state.decided and state.decision == 5
        assert sent is not None and sent[1] == (DECIDE, 5)

    def test_second_decide_not_rerelayed(self):
        algorithm = make_algorithm()
        state = algorithm.initial_state(2, 3)
        state, _ = drive(algorithm, 2, state, received=[(0, (DECIDE, 5))])
        # Drain the remaining relay send.
        state, sent = drive(algorithm, 2, state)
        assert sent is not None
        state, sent = drive(algorithm, 2, state, received=[(1, (DECIDE, 5))])
        assert sent is None  # relayed already; no duplicate storm
