"""Emulation tour: rounds are an abstraction, steps are the machine.

Section 4 of the paper introduces RS and RWS as models emulated *from*
SS and SP.  This example runs the same round algorithm through both
emulations on the raw step kernel and checks the synchrony property
each emulation promises:

* RS on SS — round synchrony (a missing message proves a crash), with
  the per-round step deadlines derived from Φ and Δ;
* RWS on SP — weak round synchrony (Lemma 4.1): pending messages do
  occur, but their senders are dead by the end of the next round.

Run:  python examples/emulation_tour.py
"""

import random

from repro.consensus import FloodSet, FloodSetWS
from repro.emulation import (
    check_emulated_round_synchrony,
    check_emulated_weak_round_synchrony,
    count_pending_messages,
    emulate_rs_on_ss,
    emulate_rws_on_sp,
    round_deadlines,
)
from repro.failures import FailurePattern


def rs_demo() -> None:
    print("=== RS on SS ===")
    for phi, delta in ((1, 1), (2, 2)):
        deadlines = round_deadlines(3, phi, delta, 4)
        print(f"Φ={phi}, Δ={delta}: local-step deadlines per round {deadlines}")
    print()

    pattern = FailurePattern.with_crashes(3, {1: 9})
    trace = emulate_rs_on_ss(
        FloodSet(),
        [0, 1, 1],
        pattern,
        t=1,
        phi=1,
        delta=1,
        num_rounds=2,
        rng=random.Random(5),
    )
    print(f"pattern {pattern.describe()} -> decisions {trace.decisions}")
    print(
        "round synchrony violations:",
        check_emulated_round_synchrony(trace) or "none",
    )
    print(f"steps executed: {len(trace.run.schedule)}")
    print()


def rws_demo() -> None:
    print("=== RWS on SP (Lemma 4.1) ===")
    violations = 0
    pending_total = 0
    runs = 20
    for seed in range(runs):
        rng = random.Random(seed)
        pattern = FailurePattern.with_crashes(3, {0: rng.randint(3, 15)})
        trace = emulate_rws_on_sp(
            FloodSetWS(),
            [0, 1, 1],
            pattern,
            t=1,
            num_rounds=2,
            rng=rng,
            max_detection_delay=2,
            delivery_prob=0.15,
            max_age=80,
        )
        violations += len(check_emulated_weak_round_synchrony(trace))
        pending_total += count_pending_messages(trace)
    print(
        f"{runs} randomized SP runs: {pending_total} pending messages "
        f"observed, {violations} weak-round-synchrony violations"
    )
    print(
        "Pending messages are real — and their senders always die by the "
        "next round, exactly as Lemma 4.1 proves."
    )


def main() -> None:
    rs_demo()
    rws_demo()


if __name__ == "__main__":
    main()
