"""Tests for failure scenarios and their admissibility validation."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    PendingMessage,
    validate_scenario,
)


def scenario(n=3, crashes=(), pending=()):
    return FailureScenario(
        n=n, crashes=tuple(crashes), pending=frozenset(pending)
    )


class TestCrashEvent:
    def test_rejects_round_zero(self):
        with pytest.raises(ScenarioError):
            CrashEvent(pid=0, round=0)

    def test_rejects_self_in_sent_to(self):
        with pytest.raises(ScenarioError):
            CrashEvent(pid=0, round=1, sent_to=frozenset({0}))


class TestPendingMessage:
    def test_rejects_self_message(self):
        with pytest.raises(ScenarioError):
            PendingMessage(1, 1, 1)

    def test_rejects_round_zero(self):
        with pytest.raises(ScenarioError):
            PendingMessage(0, 1, 0)


class TestScenarioQueries:
    def test_failure_free(self):
        s = FailureScenario.failure_free(3)
        assert s.correct == frozenset({0, 1, 2})
        assert s.num_failures() == 0
        assert s.describe() == "failure-free"

    def test_crash_round_lookup(self):
        s = scenario(crashes=[CrashEvent(pid=1, round=2)])
        assert s.crash_round(1) == 2
        assert s.crash_round(0) is None

    def test_alive_at_start(self):
        s = scenario(crashes=[CrashEvent(pid=1, round=2)])
        assert s.alive_at_start(1, 1)
        assert s.alive_at_start(1, 2)  # crashes *during* round 2
        assert not s.alive_at_start(1, 3)

    def test_alive_at_end_without_transition(self):
        s = scenario(crashes=[CrashEvent(pid=1, round=2)])
        assert s.alive_at_end(1, 1)
        assert not s.alive_at_end(1, 2)

    def test_alive_at_end_with_transition(self):
        event = CrashEvent(
            pid=1, round=2, sent_to=frozenset({0, 2}), applies_transition=True
        )
        s = scenario(crashes=[event])
        assert s.alive_at_end(1, 2)
        assert not s.alive_at_start(1, 3)

    def test_initially_dead(self):
        s = scenario(crashes=[CrashEvent(pid=0, round=1)])
        assert s.initially_dead() == frozenset({0})

    def test_crash_with_partial_send_is_not_initially_dead(self):
        s = scenario(
            crashes=[CrashEvent(pid=0, round=1, sent_to=frozenset({1}))]
        )
        assert s.initially_dead() == frozenset()

    def test_describe_mentions_pending(self):
        s = scenario(
            crashes=[CrashEvent(pid=0, round=1, sent_to=frozenset({1}))],
            pending=[PendingMessage(0, 1, 1)],
        )
        assert "pend(r1:0->1)" in s.describe()


class TestValidation:
    def check(self, s, *, t=1, allow_pending=True):
        return validate_scenario(s, t=t, allow_pending=allow_pending)

    def test_valid_rs_scenario(self):
        s = scenario(
            crashes=[CrashEvent(pid=0, round=1, sent_to=frozenset({1}))]
        )
        assert self.check(s, allow_pending=False) == []

    def test_too_many_crashes(self):
        s = scenario(
            crashes=[CrashEvent(pid=0, round=1), CrashEvent(pid=1, round=1)]
        )
        assert any("exceed" in p for p in self.check(s, t=1))

    def test_duplicate_crash(self):
        s = scenario(
            crashes=[CrashEvent(pid=0, round=1), CrashEvent(pid=0, round=2)]
        )
        assert any("twice" in p for p in self.check(s, t=2))

    def test_everyone_crashing_rejected(self):
        s = scenario(
            n=2,
            crashes=[CrashEvent(pid=0, round=1), CrashEvent(pid=1, round=1)],
        )
        assert any("correct" in p for p in self.check(s, t=2))

    def test_transition_requires_complete_send(self):
        event = CrashEvent(
            pid=0, round=1, sent_to=frozenset({1}), applies_transition=True
        )
        assert any(
            "without having" in p
            for p in self.check(scenario(crashes=[event]))
        )

    def test_pending_forbidden_in_rs(self):
        s = scenario(
            crashes=[CrashEvent(pid=0, round=1, sent_to=frozenset({1}))],
            pending=[PendingMessage(0, 1, 1)],
        )
        assert any("RS" in p for p in self.check(s, allow_pending=False))

    def test_pending_never_sent_rejected(self):
        # p0 crashes in round 1 reaching nobody — its round-1 message to
        # p1 was never sent, so it cannot be pending.
        s = scenario(
            crashes=[CrashEvent(pid=0, round=1)],
            pending=[PendingMessage(0, 1, 1)],
        )
        assert any("never sent" in p or "sent nothing" in p
                   for p in self.check(s))

    def test_pending_from_later_crash_round_rejected(self):
        # p0 crashes in round 1; a round-2 message from it cannot exist.
        s = scenario(
            crashes=[CrashEvent(pid=0, round=1)],
            pending=[PendingMessage(0, 1, 2)],
        )
        assert self.check(s)

    def test_weak_round_synchrony_enforced(self):
        # Correct sender cannot have a pending message to a live process.
        s = scenario(pending=[PendingMessage(0, 1, 1)])
        assert any("weak round synchrony" in p for p in self.check(s))

    def test_sender_crashing_too_late_rejected(self):
        s = scenario(
            crashes=[CrashEvent(pid=0, round=3, sent_to=frozenset())],
            pending=[PendingMessage(0, 1, 1)],
        )
        assert any("weak round synchrony" in p for p in self.check(s))

    def test_paper_scenario_accepted(self):
        """The A1 disagreement run: send all (pending), decide, crash."""
        s = scenario(
            crashes=[
                CrashEvent(
                    pid=0,
                    round=1,
                    sent_to=frozenset({1, 2}),
                    applies_transition=True,
                )
            ],
            pending=[PendingMessage(0, 1, 1), PendingMessage(0, 2, 1)],
        )
        assert self.check(s) == []

    def test_emulation_impossible_transition_rejected(self):
        """A sender with a round-r pending message cannot complete round
        r+1's transition (its recipient's suspicion proves it dead)."""
        s = scenario(
            crashes=[
                CrashEvent(
                    pid=0,
                    round=2,
                    sent_to=frozenset({1, 2}),
                    applies_transition=True,
                )
            ],
            pending=[PendingMessage(0, 1, 1)],
        )
        assert any("emulation-impossible" in p for p in self.check(s))

    def test_partial_send_in_next_round_allowed(self):
        """...but *sending* (without transition) in round r+1 is fine."""
        s = scenario(
            crashes=[CrashEvent(pid=0, round=2, sent_to=frozenset({1}))],
            pending=[PendingMessage(0, 1, 1), PendingMessage(0, 2, 1)],
        )
        assert self.check(s) == []

    def test_horizon_bound(self):
        s = scenario(crashes=[CrashEvent(pid=0, round=9)])
        assert any(
            "beyond" in p
            for p in validate_scenario(s, t=1, allow_pending=False, horizon=3)
        )
