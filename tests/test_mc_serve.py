"""Sharded checking: mc:... serve specs and solo/serve resume parity."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mc import McTask, check, mc_space_from_spec, spec_for_task
from repro.mc.space import parse_spec, space_for_params
from repro.serve import Coordinator, execute_shard

import pytest

TASK = McTask(
    property_name="agreement",
    algorithm="floodset",
    n=3,
    t=1,
    model="RS",
    horizon=3,
)


class TestSpecRoundTrip:
    def test_spec_rebuilds_the_same_space(self):
        spec = spec_for_task(TASK)
        assert spec.startswith("mc:agreement:floodset:")
        space = mc_space_from_spec(spec)
        solo = check(TASK)
        assert space.name == solo.sweep.space_name
        assert [r.cache_key() for r in space.requests] == [
            r.request_key for r in solo.sweep.results
        ]

    def test_parse_spec_recovers_parameters(self):
        params = parse_spec(spec_for_task(TASK))
        assert params["algorithm"] == "floodset"
        assert params["n"] == 3 and params["t"] == 1
        assert params["model"] == "RS"
        assert space_for_params(params).name == mc_space_from_spec(
            spec_for_task(TASK)
        ).name

    def test_malformed_spec_is_rejected(self):
        with pytest.raises(ConfigurationError):
            mc_space_from_spec("sweep:all:floodset")


class TestServeResumesSolo:
    def _drive(self, coordinator):
        while True:
            grant = coordinator.claim("w1")
            if grant.get("done"):
                break
            results = execute_shard(grant)
            receipt = coordinator.submit(
                {
                    "shard_id": grant["shard_id"],
                    "lease_id": grant["lease_id"],
                    "worker_id": "w1",
                    "results": results,
                }
            )
            assert receipt["stale"] is False
        return coordinator.finalize()

    def test_sharded_run_then_solo_check_reexecutes_nothing(self, tmp_path):
        root = str(tmp_path / "runs")
        space = mc_space_from_spec(spec_for_task(TASK))
        _, summary = self._drive(
            Coordinator(space, run_root=root, shard_size=3)
        )
        assert summary["serve"]["cells"]["executed"] == len(space.requests)

        # The solo checker opens the very same run directory (same
        # space name + identity), finds every cell cached, and still
        # recomputes the full verdict.
        resumed = check(
            McTask(**{**TASK.__dict__, "run_root": root})
        )
        assert resumed.sweep.executed == 0
        assert resumed.sweep.cached == len(space.requests)

        fresh = check(TASK)
        assert resumed.verdict.to_dict() == fresh.verdict.to_dict()

    def test_solo_run_resumes_itself(self, tmp_path):
        root = str(tmp_path / "runs")
        first = check(McTask(**{**TASK.__dict__, "run_root": root}))
        assert first.sweep.executed == len(first.sweep.results)
        second = check(McTask(**{**TASK.__dict__, "run_root": root}))
        assert second.sweep.executed == 0
        assert second.verdict.to_dict() == first.verdict.to_dict()
