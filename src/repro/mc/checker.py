"""The checker's orchestration: explore, execute, judge, witness.

:func:`check` ties the subsystem together:

1. **Plan** the frontier for the task — the exhaustive reduced
   schedule set (:func:`repro.mc.explore.explore`), the failure-free Λ
   matrix, or the emulation grid — reified as a scenario space.
2. **Execute** it through one :class:`~repro.runtime.sweep.SweepRunner`
   (parallel, cached, resumable): with ``run_root`` the checker opens
   the same ``kind="sweep"`` run directory a ``repro serve``
   coordinator over the same space would, so the two resume each other
   — a sharded checking run finishes, and the solo re-run recomputes
   the verdict with ``executed == 0``.
3. **Cross-check** every schedule leaf's *predicted* decisions (the
   explorer steps algorithm transitions itself) against the engine's
   — the exploration is under differential test on every run; a
   divergence voids the exhaustive claim and is reported as its own
   refutation.
4. **Judge** the property over the executed cells and, for a
   ``REFUTED`` verdict, reduce the first witness through the fuzz
   shrinker (:func:`still_fails_for` is the property-specific
   predicate) and emit replayable witness documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.fuzz.shrink import shrink
from repro.mc.explore import Exploration, explore
from repro.mc.properties import (
    PROPERTIES,
    PropertyOutcome,
    Violation,
    cell_property_problems,
    default_lambda_bound,
    evaluate_property,
)
from repro.mc.space import (
    GRID_ENGINES,
    SCHEDULE_ENGINES,
    frontier_space,
    grid_space,
    lambda_space,
)
from repro.mc.verdict import Verdict, witness_document
from repro.obs.artifacts import RunDir, identity_for_requests
from repro.obs.progress import ProgressReporter
from repro.runtime.cache import ResultCache
from repro.runtime.harness import execute_request
from repro.runtime.request import ExecutionRequest, ExecutionResult
from repro.runtime.space import ScenarioSpace
from repro.runtime.sweep import SweepResult, SweepRunner

#: Witnesses embedded per REFUTED verdict (the first is shrunk).
MAX_WITNESSES = 3

#: Algorithms defined only for specific ``t`` (the CLI clamps with a
#: warning; the checker itself refuses, keeping verdicts honest).
ALGORITHM_T_CONSTRAINTS: dict[str, int] = {"a1": 1}


@dataclass(frozen=True)
class McTask:
    """One checking task: a property over a bounded parameter box."""

    property_name: str
    algorithm: str
    n: int = 3
    t: int = 1
    model: str = "RS"
    horizon: int = 3
    engine: str = "rounds"
    reduce: bool = True
    jobs: int = 1
    run_root: str | None = None
    bound: str | None = None
    by_round: int | None = None
    shrink_witness: bool = True
    max_shrink_attempts: int = 200

    def validate(self) -> None:
        if self.property_name not in PROPERTIES:
            raise ConfigurationError(
                f"unknown property {self.property_name!r}; choose from "
                f"{sorted(PROPERTIES)}"
            )
        if self.engine not in SCHEDULE_ENGINES + GRID_ENGINES:
            raise ConfigurationError(
                f"unknown mc engine {self.engine!r}; choose from "
                f"{SCHEDULE_ENGINES + GRID_ENGINES}"
            )
        required_t = ALGORITHM_T_CONSTRAINTS.get(self.algorithm)
        if required_t is not None and self.t != required_t:
            raise ConfigurationError(
                f"{self.algorithm} is defined for t={required_t} only "
                f"(got t={self.t})"
            )


@dataclass
class McOutcome:
    """Everything one :func:`check` call established."""

    task: McTask
    verdict: Verdict
    sweep: SweepResult
    exploration: Exploration | None = None
    run_dir: str | None = None
    witness_requests: list[ExecutionRequest] = field(default_factory=list)


def still_fails_for(
    task: McTask,
) -> Callable[[ExecutionRequest], bool]:
    """The shrinker's predicate: does the mutant still refute the property?

    Executes the mutant in-process (no cache — shrinking probes many
    throwaway requests) and re-evaluates the *property*, not the fuzz
    oracles, so the shrunk witness still refutes exactly what the
    verdict claims.
    """

    def predicate(mutant: ExecutionRequest) -> bool:
        result = execute_request(mutant)
        return bool(
            cell_property_problems(
                task.property_name,
                mutant,
                result,
                t=task.t,
                horizon=task.horizon,
                by_round=task.by_round,
            )
        )

    return predicate


def _plan(task: McTask) -> tuple[ScenarioSpace, Exploration | None, str]:
    """``(space, exploration, scope)`` for one task."""
    if task.engine in GRID_ENGINES:
        space = grid_space(
            task.algorithm,
            n=task.n,
            t=task.t,
            horizon=task.horizon,
            engine=task.engine,
        )
        return space, None, "grid"
    if task.property_name == "lambda":
        space = lambda_space(
            task.algorithm,
            n=task.n,
            t=task.t,
            model=task.model,
            horizon=task.horizon,
            engine=task.engine,
        )
        return space, None, "exhaustive"
    exploration = explore(
        task.algorithm,
        n=task.n,
        t=task.t,
        model=task.model,
        horizon=task.horizon,
        reduce=task.reduce,
    )
    return frontier_space(exploration, engine=task.engine), exploration, "exhaustive"


def _prediction_divergences(
    exploration: Exploration | None,
    space: ScenarioSpace,
    sweep: SweepResult,
) -> list[Violation]:
    """Explorer-vs-engine decision divergences (empty = consistent)."""
    if exploration is None:
        return []
    violations = []
    for leaf, request, result in zip(
        exploration.leaves, space.requests, sweep.results
    ):
        if leaf.decisions != result.decisions:
            violations.append(
                Violation(
                    cell=request.name,
                    problems=[
                        "exploration predicted decisions "
                        f"{leaf.decisions!r} but the {request.engine} "
                        f"engine produced {result.decisions!r}"
                    ],
                    request=request,
                )
            )
    return violations


def _replayable(request: ExecutionRequest) -> ExecutionRequest:
    """The witness form of a cell: replay oracles assert consensus."""
    if request.engine in SCHEDULE_ENGINES:
        return dc_replace(request, check_consensus=True)
    return request


def _witnesses(
    task: McTask, outcome: PropertyOutcome
) -> tuple[list[dict[str, Any]], list[ExecutionRequest]]:
    """Witness documents for a REFUTED verdict, first one shrunk."""
    documents: list[dict[str, Any]] = []
    requests: list[ExecutionRequest] = []
    shrinkable = (
        task.shrink_witness
        and PROPERTIES[task.property_name].kind == "cell"
    )
    for index, violation in enumerate(outcome.violations[:MAX_WITNESSES]):
        if violation.request is None:
            continue
        original = violation.request
        shrunk = original
        problems = list(violation.problems)
        attempts = 0
        if index == 0 and shrinkable:
            reduction = shrink(
                original,
                still_fails_for(task),
                max_attempts=task.max_shrink_attempts,
            )
            shrunk = reduction.request
            attempts = reduction.attempts
            final = execute_request(shrunk)
            problems = cell_property_problems(
                task.property_name,
                shrunk,
                final,
                t=task.t,
                horizon=task.horizon,
                by_round=task.by_round,
            ) or problems
        documents.append(
            witness_document(
                property_name=task.property_name,
                original=_replayable(original),
                shrunk=_replayable(shrunk),
                problems=problems,
                shrink_attempts=attempts,
            )
        )
        requests.append(_replayable(shrunk))
    return documents, requests


def check(task: McTask, *, progress_stream: Any = None) -> McOutcome:
    """Run one checking task end to end; see the module docstring."""
    task.validate()
    space, exploration, scope = _plan(task)

    run_dir: RunDir | None = None
    reporter: ProgressReporter | None = None
    on_cell = None
    cache: ResultCache | None = None
    if task.run_root is not None:
        run_dir = RunDir.open(
            task.run_root,
            kind="sweep",
            name=space.name,
            identity=identity_for_requests(space.requests),
            cells=[(r.name, r.cache_key()) for r in space.requests],
            config={
                "space": space.name,
                "mode": "mc",
                "property": task.property_name,
            },
        )
        cache = ResultCache(run_dir.results_dir)
        reporter = ProgressReporter(
            total=len(space.requests),
            path=run_dir.progress_path,
            stream=progress_stream,
            label=f"mc:{task.property_name}",
        ).start()

        def on_cell(request: ExecutionRequest, result: ExecutionResult) -> None:
            profile = result.extra.get("profile") or {}
            run_dir.record_cell(
                name=request.name,
                key=result.request_key,
                cached=result.cached,
                engine=request.engine,
                algorithm=request.algorithm,
                latency=result.latency,
                num_rounds=result.num_rounds,
                events=len(result.events),
                duration_s=profile.get("duration_s"),
            )
            reporter.advance(cached=result.cached)

    runner = SweepRunner(
        jobs=task.jobs, cache=cache, check=False, on_cell=on_cell
    )
    try:
        sweep = runner.run(space)
    except BaseException:
        if run_dir is not None:
            run_dir.mark_interrupted()
        if reporter is not None:
            reporter.stop(status="interrupted")
        raise

    pairs = list(zip(space.requests, sweep.results))
    divergences = _prediction_divergences(exploration, space, sweep)
    bound = task.bound
    if task.property_name == "lambda" and bound is None:
        bound = default_lambda_bound(task.algorithm, task.model, task.t)
    outcome = evaluate_property(
        task.property_name,
        pairs,
        t=task.t,
        horizon=task.horizon,
        bound=bound,
        by_round=task.by_round,
    )
    if divergences:
        # The engine contradicts the round semantics the exploration
        # stepped: the exhaustive claim is void, whatever the property
        # said, and the diverging cells are the witnesses.
        outcome = PropertyOutcome(
            holds=False, violations=divergences, details=outcome.details
        )

    # Verdict statistics are deterministic facts of the frontier — the
    # executed/cached split varies with cache warmth and lives on the
    # sweep, so a sharded serve run and a solo run agree byte-for-byte.
    stats: dict[str, Any] = {"cells": len(space.requests)}
    if exploration is not None:
        stats.update(exploration.stats.to_dict())

    documents: list[dict[str, Any]] = []
    witness_requests: list[ExecutionRequest] = []
    problems = [
        problem
        for violation in outcome.violations[:MAX_WITNESSES]
        for problem in violation.problems
    ]
    overflow = len(outcome.violations) - MAX_WITNESSES
    if overflow > 0:
        problems.append(f"... and {overflow} more violating cell(s)")
    if not outcome.holds:
        documents, witness_requests = _witnesses(task, outcome)

    verdict = Verdict(
        property_name=task.property_name,
        holds=outcome.holds,
        scope=scope,
        algorithm=task.algorithm,
        n=task.n,
        t=task.t,
        model=task.model if task.engine in SCHEDULE_ENGINES else None,
        horizon=task.horizon,
        engine=task.engine,
        reduce=task.reduce,
        stats=stats,
        details=outcome.details,
        problems=problems,
        witnesses=documents,
    )

    if run_dir is not None:
        run_dir.finalize(
            {
                "mc": verdict.to_dict(),
                "cells": {
                    "total": sweep.total,
                    "executed": sweep.executed,
                    "cached": sweep.cached,
                },
            }
        )
        reporter.stop()

    return McOutcome(
        task=task,
        verdict=verdict,
        sweep=sweep,
        exploration=exploration,
        run_dir=str(run_dir.path) if run_dir is not None else None,
        witness_requests=witness_requests,
    )
