"""Failure-pattern generators for experiments and exhaustive checks."""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.failures.pattern import FailurePattern


def crash_free(n: int) -> FailurePattern:
    """A pattern with no failures."""
    return FailurePattern.crash_free(n)


def initially_dead(n: int, pids: Iterable[int]) -> FailurePattern:
    """A pattern in which ``pids`` crash at time 0 (never take a step)."""
    return FailurePattern.initially_dead_set(n, pids)


def single_crash(n: int, pid: int, time: int) -> FailurePattern:
    """A pattern in which exactly ``pid`` crashes, at ``time``."""
    return FailurePattern.with_crashes(n, {pid: time})


def random_pattern(
    n: int,
    max_failures: int,
    horizon: int,
    rng: random.Random,
) -> FailurePattern:
    """Draw a random pattern with at most ``max_failures`` crashes.

    The number of crashes is uniform on ``0 .. max_failures``; crashed
    processes and crash times are uniform.  Times range over
    ``0 .. horizon`` so initially-dead processes do occur.
    """
    if max_failures >= n:
        raise ConfigurationError(
            f"max_failures={max_failures} must be < n={n} "
            "(at least one process must be correct)"
        )
    k = rng.randint(0, max_failures)
    victims = rng.sample(range(n), k)
    crashes = {pid: rng.randint(0, horizon) for pid in victims}
    return FailurePattern.with_crashes(n, crashes)


def all_patterns(
    n: int,
    max_failures: int,
    times: Iterable[int],
) -> Iterator[FailurePattern]:
    """Enumerate every pattern with at most ``max_failures`` crashes.

    Crash times are drawn from ``times``.  Used by exhaustive latency
    computations and model-checking experiments; the count is
    ``sum_k C(n, k) * |times|^k`` so keep ``n`` and ``times`` small.
    """
    time_list = sorted(set(times))
    yield FailurePattern.crash_free(n)
    for k in range(1, max_failures + 1):
        for victims in itertools.combinations(range(n), k):
            for assignment in itertools.product(time_list, repeat=k):
                crashes = dict(zip(victims, assignment))
                yield FailurePattern.with_crashes(n, crashes)
