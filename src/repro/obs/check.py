"""Streaming invariant monitors over event traces — the trace oracle.

The paper's model properties are all *predicates over runs*, and a run
is exactly what an :class:`~repro.obs.events.EventLog` records.  This
module turns each property into a streaming checker over the event
sequence:

* **detector.accuracy** — P's strong accuracy: no process is suspected
  before it crashes (Section 2).
* **detector.completeness** — P's strong completeness: every crashed
  process is eventually suspected by every correct one (Section 2).  On
  a finite trace prefix this is a liveness property, so misses are
  reported as *warnings*, not errors.
* **synchrony.rs** — round synchrony (Section 4.1): a sent message is
  always delivered, so ``msg_withheld`` may only name senders that
  already crashed in an earlier round.
* **synchrony.rws** — weak round synchrony (Section 4.2, Lemma 4.1): a
  message withheld in round ``k`` from a recipient that survives the
  round forces its sender to crash by the end of round ``k + 1``.
* **consensus** — agreement, uniform agreement and (when the initial
  values are known) validity over ``decide`` events (Section 5).
* **ordering** — trace well-formedness: contiguous 1-based round
  numbers, round/time tags consistent with the current round, alive
  lists shrinking exactly by prior crashes, no activity from crashed or
  halted processes.

Checkers consume one event at a time (``feed``) and settle liveness
obligations at end of trace (``finish``); each violation carries the
0-based index of the offending event so reports point at the exact
line of an exported JSONL trace (line = index + 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.events import Event

#: Severity levels a violation may carry.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Violation:
    """One invariant violation, anchored to an event index.

    Attributes:
        checker: Name of the checker that raised it.
        index: 0-based index of the offending event in the trace
            (``-1`` for trace-level findings with no single culprit).
        message: Human-readable description.
        severity: ``"error"`` for safety violations, ``"warning"`` for
            liveness obligations that a finite prefix cannot settle.
    """

    checker: str
    index: int
    message: str
    severity: str = "error"

    def describe(self) -> str:
        where = f"event {self.index}" if self.index >= 0 else "trace"
        tag = "" if self.severity == "error" else f" ({self.severity})"
        return f"{where}: [{self.checker}]{tag} {self.message}"


@dataclass
class CheckReport:
    """The outcome of running a checker suite over one trace."""

    checkers: tuple[str, ...]
    num_events: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity violation was found."""
        return not self.errors

    def by_checker(self, name: str) -> list[Violation]:
        return [v for v in self.violations if v.checker == name]

    def describe(self) -> str:
        lines = [
            f"checked {self.num_events} events with "
            f"{len(self.checkers)} checkers ({', '.join(self.checkers)})"
        ]
        for violation in self.violations:
            lines.append("  " + violation.describe())
        if not self.violations:
            lines.append("  all invariants hold")
        else:
            lines.append(
                f"  => {len(self.errors)} errors, "
                f"{len(self.warnings)} warnings"
            )
        return "\n".join(lines)


class TraceChecker:
    """Base class: feed events one by one, then finish."""

    name = "checker"

    def __init__(self) -> None:
        self.violations: list[Violation] = []

    def _flag(self, index: int, message: str, severity: str = "error") -> None:
        self.violations.append(
            Violation(self.name, index, message, severity)
        )

    def feed(self, index: int, event: Event) -> None:
        """Observe one event (0-based ``index`` within the trace)."""

    def finish(self, num_events: int) -> None:
        """Settle end-of-trace obligations."""


class OrderingChecker(TraceChecker):
    """Trace well-formedness: round/time ordering and lifecycle rules."""

    name = "ordering"

    def __init__(self) -> None:
        super().__init__()
        self._round: int | None = None
        self._n: int | None = None
        self._last_time: int | None = None
        self._crash_round: dict[int, int] = {}
        self._crash_time: dict[int, int] = {}
        self._halted: set[int] = set()

    def feed(self, index: int, event: Event) -> None:
        if event.time is not None:
            if self._last_time is not None and event.time < self._last_time:
                self._flag(
                    index,
                    f"time {event.time} after time {self._last_time} "
                    "(global step time must be monotone)",
                )
            else:
                self._last_time = event.time

        if event.kind == "round_start":
            self._feed_round_start(index, event)
        elif event.round is not None and self._round is not None:
            if event.round != self._round:
                self._flag(
                    index,
                    f"{event.kind} tagged round {event.round} inside "
                    f"round {self._round}",
                )

        actor = self._actor_of(event)
        if actor is not None and actor in self._halted:
            self._flag(index, f"{event.kind} involving p{actor} after its halt")

        if event.kind == "halt":
            if event.pid in self._crash_round or event.pid in self._crash_time:
                self._flag(index, f"halt of crashed process p{event.pid}")
            self._halted.add(event.pid)
        elif event.kind == "crash":
            self._feed_crash(index, event)
        elif event.kind in ("msg_sent", "msg_withheld"):
            self._check_sender_alive(index, event)
        elif event.kind == "decide":
            crash = self._crash_round.get(event.pid)
            if (
                crash is not None
                and event.round is not None
                and event.round > crash
            ):
                self._flag(
                    index,
                    f"p{event.pid} decides in round {event.round} after "
                    f"crashing in round {crash}",
                )
        elif event.kind in ("msg_delivered", "suspect"):
            # Step-model actors stop stepping at their crash time;
            # round-model deliveries may target crashed recipients, so
            # only the time-tagged form is checked.
            crash_time = self._crash_time.get(event.pid)
            if (
                crash_time is not None
                and event.time is not None
                and event.time >= crash_time
            ):
                self._flag(
                    index,
                    f"p{event.pid} {event.kind} at time {event.time} after "
                    f"crashing at time {crash_time}",
                )

    def _feed_round_start(self, index: int, event: Event) -> None:
        round_index = event.round
        if round_index is None:
            self._flag(index, "round_start without a round number")
            return
        if self._round is None:
            if round_index != 1:
                self._flag(
                    index,
                    f"first round_start is round {round_index}, expected 1",
                )
        elif round_index != self._round + 1:
            self._flag(
                index,
                f"round_start {round_index} follows round {self._round} "
                "(rounds must increase by exactly 1)",
            )
        if self._round is None or round_index > self._round:
            self._round = round_index
        if isinstance(event.value, (list, tuple)):
            alive = set(event.value)
            if self._n is None and round_index == 1:
                self._n = len(alive)
            if self._n is not None:
                expected = set(range(self._n)) - {
                    pid
                    for pid, crash in self._crash_round.items()
                    if crash < round_index
                }
                if alive != expected:
                    self._flag(
                        index,
                        f"round {round_index} alive list {sorted(alive)} "
                        f"does not match crash history "
                        f"(expected {sorted(expected)})",
                    )

    def _feed_crash(self, index: int, event: Event) -> None:
        pid = event.pid
        if pid in self._crash_round or pid in self._crash_time:
            self._flag(index, f"p{pid} crashes twice")
            return
        if event.round is not None:
            self._crash_round[pid] = event.round
        elif event.time is not None:
            self._crash_time[pid] = event.time
        else:
            self._flag(index, f"crash of p{pid} carries neither round nor time")

    def _check_sender_alive(self, index: int, event: Event) -> None:
        sender = event.peer
        crash = self._crash_round.get(sender)
        if crash is not None and event.round is not None and event.round > crash:
            self._flag(
                index,
                f"message from p{sender} in round {event.round} after its "
                f"crash in round {crash}",
            )
        crash_time = self._crash_time.get(sender)
        if (
            crash_time is not None
            and event.time is not None
            and event.time >= crash_time
        ):
            self._flag(
                index,
                f"message from p{sender} at time {event.time} after its "
                f"crash at time {crash_time}",
            )

    @staticmethod
    def _actor_of(event: Event) -> int | None:
        """The process *acting* in this event (None for round_start)."""
        if event.kind in ("msg_sent", "msg_withheld"):
            return event.peer
        if event.kind == "round_start":
            return None
        return event.pid


class DetectorAccuracyChecker(TraceChecker):
    """P strong accuracy: no suspicion may precede the peer's crash."""

    name = "detector.accuracy"

    def __init__(self) -> None:
        super().__init__()
        self._crashed: set[int] = set()

    def feed(self, index: int, event: Event) -> None:
        if event.kind == "crash":
            self._crashed.add(event.pid)
        elif event.kind == "suspect" and event.peer not in self._crashed:
            self._flag(
                index,
                f"p{event.pid} suspects p{event.peer} before any crash of "
                f"p{event.peer} (strong accuracy)",
            )


class DetectorCompletenessChecker(TraceChecker):
    """P strong completeness: crashed processes get suspected by all.

    On a finite prefix a missing suspicion may simply not have happened
    *yet* (or the would-be suspector finished and stopped querying its
    module), so misses are warnings.  The checker is vacuous on traces
    with no ``suspect`` events at all — those runs have no detector
    (round model, SS).
    """

    name = "detector.completeness"

    def __init__(self) -> None:
        super().__init__()
        self._universe: set[int] = set()
        self._crashes: list[tuple[int, int]] = []  # (index, pid)
        self._suspected_by: dict[int, set[int]] = {}

    def feed(self, index: int, event: Event) -> None:
        if event.pid is not None:
            self._universe.add(event.pid)
        if event.peer is not None:
            self._universe.add(event.peer)
        if event.kind == "crash":
            self._crashes.append((index, event.pid))
        elif event.kind == "suspect":
            self._suspected_by.setdefault(event.peer, set()).add(event.pid)

    def finish(self, num_events: int) -> None:
        if not self._suspected_by:
            return  # no detector in this trace
        crashed = {pid for _, pid in self._crashes}
        correct = self._universe - crashed
        for index, dead in self._crashes:
            for pid in sorted(correct):
                if pid not in self._suspected_by.get(dead, set()):
                    self._flag(
                        index,
                        f"p{dead} crashed but p{pid} never suspects it "
                        "within this trace (strong completeness, finite "
                        "prefix)",
                        severity="warning",
                    )


class RoundSynchronyChecker(TraceChecker):
    """RS round synchrony: withheld messages only from crashed senders.

    In RS a message that reached the network is delivered in its round,
    so a ``msg_withheld`` event is only ever explainable by a hand-made
    trace whose sender was already dead — anything else is a synchrony
    violation.
    """

    name = "synchrony.rs"

    def __init__(self) -> None:
        super().__init__()
        self._crash_round: dict[int, int] = {}

    def feed(self, index: int, event: Event) -> None:
        if event.kind == "crash" and event.round is not None:
            self._crash_round.setdefault(event.pid, event.round)
        elif event.kind == "msg_withheld":
            crash = self._crash_round.get(event.peer)
            if crash is None or event.round is None or crash >= event.round:
                self._flag(
                    index,
                    f"round synchrony violated: message from p{event.peer} "
                    f"withheld in round {event.round} although the sender "
                    "had not crashed in an earlier round",
                )


class WeakRoundSynchronyChecker(TraceChecker):
    """RWS weak round synchrony (Lemma 4.1).

    A message withheld in round ``k`` from a recipient that survives
    the round implies its sender crashes by the end of round ``k + 1``.
    Round-model crashes are checked against the exact bound; a
    step-model crash (``time``-tagged, as lifted SP-emulation traces
    carry) discharges the obligation, with the exact round bound left
    to :func:`repro.emulation.check_emulated_weak_round_synchrony`,
    which sees the full step run.

    A run that quiesces (everyone decided) before round ``k + 2`` never
    executes the round the crash was scheduled for, so a missing crash
    is only an *error* when the trace proves round ``k + 1`` is over
    (some event carries a later round); otherwise the obligation is
    unsettled on this finite prefix and reported as a warning.
    """

    name = "synchrony.rws"

    def __init__(self) -> None:
        super().__init__()
        self._withheld: list[tuple[int, int, int, int]] = []
        self._crash_round: dict[int, int] = {}
        self._crash_time: dict[int, int] = {}
        self._max_round: int = 0

    def feed(self, index: int, event: Event) -> None:
        if event.round is not None:
            self._max_round = max(self._max_round, event.round)
        if event.kind == "crash":
            if event.round is not None:
                self._crash_round.setdefault(event.pid, event.round)
            elif event.time is not None:
                self._crash_time.setdefault(event.pid, event.time)
        elif event.kind == "msg_withheld" and event.round is not None:
            self._withheld.append((index, event.round, event.peer, event.pid))

    def finish(self, num_events: int) -> None:
        for index, round_index, sender, recipient in self._withheld:
            recipient_crash = self._crash_round.get(recipient)
            if recipient_crash is not None and recipient_crash <= round_index:
                continue  # the recipient did not survive the round
            sender_crash = self._crash_round.get(sender)
            if sender_crash is not None and sender_crash <= round_index + 1:
                continue
            if sender in self._crash_time:
                continue  # step-model crash: bound checked on the step run
            if sender_crash is None and self._max_round < round_index + 2:
                self._flag(
                    index,
                    f"message from p{sender} withheld in round "
                    f"{round_index} and the trace ends before round "
                    f"{round_index + 2}: the crash-by-round-"
                    f"{round_index + 1} obligation is unsettled on this "
                    "prefix",
                    severity="warning",
                )
                continue
            self._flag(
                index,
                "weak round synchrony violated: message from "
                f"p{sender} withheld in round {round_index} but the sender "
                f"does not crash by the end of round {round_index + 1}",
            )


class ConsensusChecker(TraceChecker):
    """Agreement / uniform agreement / validity over ``decide`` events.

    *Agreement* compares deciders that never crash in the trace;
    *uniform agreement* compares every decide event, including those of
    processes that decide and then crash (the paper's Section 5.3
    move).  *Validity* is checked only when the run's initial values
    are supplied — a trace alone does not carry them.
    """

    name = "consensus"

    def __init__(self, initial_values: Sequence[Any] | None = None) -> None:
        super().__init__()
        self.initial_values = (
            tuple(initial_values) if initial_values is not None else None
        )
        self._decides: list[tuple[int, int, Any]] = []
        self._decided: set[int] = set()
        self._crashed: set[int] = set()

    def feed(self, index: int, event: Event) -> None:
        if event.kind == "crash":
            self._crashed.add(event.pid)
        elif event.kind == "decide":
            if event.pid in self._decided:
                self._flag(index, f"p{event.pid} decides twice")
            self._decided.add(event.pid)
            self._decides.append((index, event.pid, event.value))

    def finish(self, num_events: int) -> None:
        if self.initial_values is not None:
            for index, pid, value in self._decides:
                if value not in self.initial_values:
                    self._flag(
                        index,
                        f"validity violated: p{pid} decides {value!r}, not "
                        "an initial value",
                    )
        correct = [
            entry for entry in self._decides if entry[1] not in self._crashed
        ]
        self._check_agreement(correct, "agreement")
        self._check_agreement(self._decides, "uniform agreement")

    def _check_agreement(
        self, decides: list[tuple[int, int, Any]], label: str
    ) -> None:
        if not decides:
            return
        first_index, first_pid, reference = decides[0]
        for index, pid, value in decides[1:]:
            if value != reference:
                self._flag(
                    index,
                    f"{label} violated: p{pid} decides {value!r} but "
                    f"p{first_pid} decided {reference!r} (event {first_index})",
                )


def default_checkers(
    *,
    model: Any = None,
    initial_values: Sequence[Any] | None = None,
) -> list[TraceChecker]:
    """The standard oracle suite for one trace.

    ``model`` selects the synchrony checker: ``"RS"``, ``"RWS"``, a
    :class:`~repro.rounds.executor.RoundModel`, or ``None`` to apply
    the weak variant, which is sound for both models (an RS trace has
    no withheld messages, so it passes vacuously).
    """
    model_name = getattr(model, "value", model)
    if model_name is not None:
        model_name = str(model_name).upper()
    if model_name not in (None, "RS", "RWS"):
        raise ValueError(f"unknown round model {model!r}")
    checkers: list[TraceChecker] = [
        OrderingChecker(),
        DetectorAccuracyChecker(),
        DetectorCompletenessChecker(),
        (
            RoundSynchronyChecker()
            if model_name == "RS"
            else WeakRoundSynchronyChecker()
        ),
        ConsensusChecker(initial_values),
    ]
    return checkers


def run_checkers(
    events: Iterable[Event], checkers: Sequence[TraceChecker]
) -> CheckReport:
    """Stream ``events`` through ``checkers`` and collect the report."""
    count = 0
    for index, event in enumerate(events):
        count = index + 1
        for checker in checkers:
            checker.feed(index, event)
    violations: list[Violation] = []
    for checker in checkers:
        checker.finish(count)
        violations.extend(checker.violations)
    violations.sort(key=lambda v: (v.index, v.checker))
    return CheckReport(
        checkers=tuple(checker.name for checker in checkers),
        num_events=count,
        violations=violations,
    )


def check_events(
    events: Sequence[Event],
    *,
    model: Any = None,
    initial_values: Sequence[Any] | None = None,
) -> CheckReport:
    """Run the default oracle suite over an event sequence."""
    return run_checkers(
        events, default_checkers(model=model, initial_values=initial_values)
    )


def ordering_problems(events: Sequence[Event]) -> list[str]:
    """Formatted ordering violations only — the shape
    ``scripts/check_trace.py`` reports next to schema problems."""
    report = run_checkers(events, [OrderingChecker()])
    return [violation.describe() for violation in report.violations]
