"""E11 — RS emulated on SS: round synchrony + the step cost of a round.

The second benchmark measures the emulation's step cost directly — the
paper's "n + k" per-round price, with k determined by Φ, Δ and r.
"""

import random

from repro.consensus import FloodSet
from repro.core.experiments import experiment_e11
from repro.emulation import (
    check_emulated_round_synchrony,
    emulate_rs_on_ss,
    round_deadlines,
)
from repro.failures import FailurePattern


def bench_e11_full_experiment(once):
    result = once(experiment_e11, True)
    assert result.ok, result.describe()


def bench_e11_one_emulated_execution(benchmark):
    pattern = FailurePattern.with_crashes(3, {1: 9})

    def emulated():
        return emulate_rs_on_ss(
            FloodSet(), [0, 1, 1], pattern, t=1,
            phi=1, delta=1, num_rounds=2, rng=random.Random(5),
        )

    trace = benchmark(emulated)
    assert check_emulated_round_synchrony(trace) == []
    benchmark.extra_info["steps_per_run"] = len(trace.run.schedule)
    benchmark.extra_info["deadlines"] = round_deadlines(3, 1, 1, 2)
