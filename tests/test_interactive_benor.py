"""Tests for interactive consistency and Ben-Or randomized consensus."""

from __future__ import annotations

import random

import pytest

from repro.analysis import verify_algorithm
from repro.consensus.interactive import (
    InteractiveConsistency,
    InteractiveConsistencyWS,
    check_interactive_consistency_run,
    consensus_from_vector,
)
from repro.consensus import FloodSet
from repro.errors import ConfigurationError
from repro.failures import FailurePattern
from repro.randomized import BenOrConsensus, benor_decisions, run_benor
from repro.rounds import (
    CrashEvent,
    FailureScenario,
    RoundModel,
    run_rs,
    run_rws,
)


class TestInteractiveConsistencyRS:
    def test_failure_free_vector(self):
        run = run_rs(
            InteractiveConsistency(), [4, 5, 6],
            FailureScenario.failure_free(3), t=1,
        )
        assert run.decision_value(0) == (4, 5, 6)
        assert check_interactive_consistency_run(run) == []

    def test_initially_dead_component_is_none(self):
        scenario = FailureScenario.initially_dead_set(3, {1})
        run = run_rs(InteractiveConsistency(), [4, 5, 6], scenario, t=1)
        assert run.decision_value(0) == (4, None, 6)
        assert check_interactive_consistency_run(run) == []

    def test_partial_broadcast_component_survives(self):
        scenario = FailureScenario(
            n=3, crashes=(CrashEvent(pid=0, round=1, sent_to=frozenset({1})),)
        )
        run = run_rs(InteractiveConsistency(), [4, 5, 6], scenario, t=1)
        # p0 reached only p1, but the flood spreads component 0 to all.
        assert run.decision_value(2) == (4, 5, 6)

    def test_exhaustive_rs(self):
        report = verify_algorithm(
            InteractiveConsistency(), 3, 1, RoundModel.RS,
            checker=check_interactive_consistency_run,
        )
        assert report.ok, report.first_violations()

    def test_exhaustive_rs_t2(self):
        report = verify_algorithm(
            InteractiveConsistency(), 4, 2, RoundModel.RS,
            checker=check_interactive_consistency_run,
            domain=(0, 1),
        )
        assert report.ok, report.first_violations()

    def test_reduction_to_consensus_matches_floodset(self):
        """min over the decided vector == FloodSet's decision, run for
        run, over the whole exhaustive space."""
        from repro.analysis import explore_runs

        ic_runs = explore_runs(
            InteractiveConsistency(), 3, 1, RoundModel.RS
        )
        fs_runs = explore_runs(FloodSet(), 3, 1, RoundModel.RS)
        for ic_run, fs_run in zip(ic_runs, fs_runs):
            assert ic_run.values == fs_run.values
            assert ic_run.scenario == fs_run.scenario
            for pid in ic_run.scenario.correct:
                assert consensus_from_vector(
                    ic_run.decision_value(pid)
                ) == fs_run.decision_value(pid)


class TestInteractiveConsistencyRWS:
    def test_plain_variant_breaks_in_rws(self):
        report = verify_algorithm(
            InteractiveConsistency(), 3, 1, RoundModel.RWS,
            checker=check_interactive_consistency_run, stop_after=1,
        )
        assert not report.ok

    def test_ws_variant_exhaustive_rws(self):
        report = verify_algorithm(
            InteractiveConsistencyWS(), 3, 1, RoundModel.RWS,
            checker=check_interactive_consistency_run,
        )
        assert report.ok, report.first_violations()

    def test_ws_survives_the_paper_scenario(self):
        from repro.workloads import floodset_rws_violation

        run = run_rws(
            InteractiveConsistencyWS(), [4, 5, 6],
            floodset_rws_violation(3), t=1,
        )
        assert check_interactive_consistency_run(run) == []


class TestBenOrConfiguration:
    def test_needs_majority(self):
        with pytest.raises(ConfigurationError):
            BenOrConsensus(4, 2, [0, 1, 0, 1])

    def test_binary_values_only(self):
        with pytest.raises(ConfigurationError):
            BenOrConsensus(3, 1, [0, 2, 1])

    def test_coin_is_deterministic_per_seed(self):
        a = BenOrConsensus(3, 1, [0, 1, 0], coin_seed=5)
        b = BenOrConsensus(3, 1, [0, 1, 0], coin_seed=5)
        assert a._coin(1, 3) == b._coin(1, 3)


class TestBenOrSafety:
    @pytest.mark.parametrize("seed", range(12))
    def test_agreement_validity_termination(self, seed):
        rng = random.Random(seed)
        crashes = (
            {rng.randrange(3): rng.randint(0, 60)} if seed % 3 == 0 else {}
        )
        pattern = FailurePattern.with_crashes(3, crashes)
        values = [rng.randint(0, 1) for _ in range(3)]
        run = run_benor(values, pattern, rng=rng, coin_seed=seed)
        decisions = benor_decisions(run)
        assert len(set(decisions.values())) <= 1
        assert set(decisions.values()) <= set(values) or not decisions
        for pid in pattern.correct:
            assert pid in decisions

    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimity_decides_that_value_round_one(self, value):
        """All-same inputs: the first round's majority locks the value —
        no coin ever flips."""
        pattern = FailurePattern.crash_free(3)
        run = run_benor([value] * 3, pattern, rng=random.Random(1))
        decisions = benor_decisions(run)
        assert set(decisions.values()) == {value}
        assert all(
            state.round <= 2 for state in run.final_states.values()
        )

    def test_five_processes_two_crashes(self):
        rng = random.Random(9)
        pattern = FailurePattern.with_crashes(5, {0: 20, 3: 50})
        values = [0, 1, 1, 0, 1]
        run = run_benor(values, pattern, rng=rng, max_steps=40_000)
        decisions = benor_decisions(run)
        assert len(set(decisions.values())) == 1
        for pid in pattern.correct:
            assert pid in decisions

    def test_decide_relay_reaches_laggards(self):
        """Every correct process decides even when coins would have kept
        some unlucky: the DECIDE relay short-circuits the lottery."""
        for seed in range(6):
            rng = random.Random(seed)
            pattern = FailurePattern.crash_free(3)
            values = [0, 1, rng.randint(0, 1)]
            run = run_benor(
                values, pattern, rng=rng, coin_seed=seed + 100
            )
            assert len(benor_decisions(run)) == 3


class TestBenOrTermination:
    def test_rounds_to_decide_are_small_for_n3(self):
        """Statistical sanity: mixed inputs at n=3 decide within a few
        rounds across seeds (coin alignment probability is high)."""
        worst = 0
        for seed in range(25):
            rng = random.Random(seed)
            pattern = FailurePattern.crash_free(3)
            run = run_benor([0, 1, 1], pattern, rng=rng, coin_seed=seed)
            assert len(benor_decisions(run)) == 3
            worst = max(
                worst,
                max(state.round for state in run.final_states.values()),
            )
        assert worst <= 6, f"suspiciously slow: {worst} rounds"
