"""System models: asynchronous, SS (synchronous), SP (async + P).

Following the paper's Section 2, a system model "determines the set of
runs that algorithms can produce in the model".  Concretely each model
here provides

* a *scheduler factory* that only generates admissible runs of the
  model, and
* a *validator* that checks an arbitrary run against the model's
  conditions (used to cross-check the schedulers and in tests).

The synchronous conditions of SS — process synchrony (Φ) and message
synchrony (Δ) — are stated purely on schedule indices, exactly as in
the paper (after Dolev–Dwork–Stockmeyer), never on wall-clock time.
"""

from repro.models.base import SystemModel
from repro.models.asynchronous import AsynchronousModel, check_admissible_prefix
from repro.models.ss import (
    SynchronousModel,
    SSScheduler,
    check_process_synchrony,
    check_message_synchrony,
    validate_ss_run,
)
from repro.models.sp import PerfectFDModel, validate_sp_run
from repro.models.partial_synchrony import (
    PartiallySynchronousModel,
    GSTScheduler,
    validate_post_gst,
)

__all__ = [
    "SystemModel",
    "AsynchronousModel",
    "check_admissible_prefix",
    "SynchronousModel",
    "SSScheduler",
    "check_process_synchrony",
    "check_message_synchrony",
    "validate_ss_run",
    "PerfectFDModel",
    "validate_sp_run",
    "PartiallySynchronousModel",
    "GSTScheduler",
    "validate_post_gst",
]
