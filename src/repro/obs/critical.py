"""Critical-path extraction, latency attribution and suspicion forensics.

Built on :mod:`repro.obs.causal`'s happens-before DAG:

* :func:`critical_paths` — per ``decide``, the longest causal chain
  (counted in message hops) from the run's start to the decision.  In
  the round models the executor records every process's self-delivery,
  so the hop count of a decision equals its decide round — which is
  exactly the paper's round-counting latency measure, and Λ on the
  failure-free run (``Λ(A1)=1``, ``Λ(FloodSet/RWS)≥2``; see
  ``analysis/latency.py``).
* :func:`attribute_decision` — for live traces (events carrying
  ``extra["wall_s"]``), splits a decision's wall latency into named
  per-round legs: ``send`` (a clean first-attempt delivery gated the
  round), ``retransmit`` (the gating message needed retransmissions),
  ``detector-wait`` (the round closed on a suspicion, i.e. the process
  sat out the detector's silence threshold) and ``local`` (transition
  and bookkeeping).  The legs telescope: they sum exactly to the
  decision wall minus the process's first action.
* :func:`suspicion_forensics` — per ``suspect``, the missed-heartbeat
  window (from the detector's ``extra`` forensics fields) and whether
  the ground-truth crash wall justifies the suspicion.
* :func:`verify_round_paths` — the Λ-bound anomaly check the report
  layer runs per cell: in any round-model trace, every decision's
  critical-path length is bounded by its decide round (with equality
  for flooding algorithms; A1 decides at depth Λ(A1)=1 regardless).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.causal import CausalGraph, annotate
from repro.obs.events import Event, clock_kind
from repro.obs.profile import profiled

#: Leg kinds :func:`attribute_decision` can emit.
LEG_KINDS = ("send", "retransmit", "detector-wait", "local")


@dataclass(frozen=True)
class Leg:
    """One contiguous slice of a live decision's wall latency."""

    kind: str  # one of LEG_KINDS
    seconds: float
    round: int | None = None
    via: Any = None  # gating msg_id, or the suspected pid

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "seconds": self.seconds}
        if self.round is not None:
            out["round"] = self.round
        if self.via is not None:
            out["via"] = self.via
        return out


@dataclass
class DecisionPath:
    """The critical path behind one ``decide`` event."""

    pid: int
    value: Any
    round: int | None
    index: int  # the decide event's trace index
    length: int  # message hops on the longest causal chain
    nodes: list[int] = field(default_factory=list)  # chain, trace order
    legs: list[Leg] = field(default_factory=list)  # live traces only
    wall_latency_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "pid": self.pid,
            "value": self.value,
            "round": self.round,
            "length": self.length,
            "nodes": list(self.nodes),
        }
        if self.wall_latency_s is not None:
            out["wall_latency_s"] = self.wall_latency_s
            out["legs"] = [leg.to_dict() for leg in self.legs]
        return out


def _message_depths(graph: CausalGraph) -> tuple[list[int], list[int | None]]:
    """Longest-chain DP: message-hop depth and argmax parent per node."""
    depth: list[int] = []
    best: list[int | None] = []
    for index in range(len(graph.events)):
        node_depth, node_best = 0, None
        for edge in graph.parents[index]:
            weight = 1 if edge.kind == "message" else 0
            candidate = depth[edge.src] + weight
            if candidate > node_depth or node_best is None:
                node_depth, node_best = candidate, edge.src
        depth.append(node_depth)
        best.append(node_best)
    return depth, best


def critical_paths(
    events: Sequence[Event], *, graph: CausalGraph | None = None
) -> list[DecisionPath]:
    """Extract the critical path of every decision in a trace.

    Wall-clock legs are attached when the trace carries live
    ``extra["wall_s"]`` stamps (see :func:`attribute_decision`).
    """
    with profiled("obs.causal.critical"):
        if graph is None:
            graph = annotate(events)
        depth, best = _message_depths(graph)
        paths: list[DecisionPath] = []
        for index in graph.decide_indices():
            event = events[index]
            nodes: list[int] = []
            cursor: int | None = index
            while cursor is not None:
                nodes.append(cursor)
                cursor = best[cursor]
            nodes.reverse()
            path = DecisionPath(
                pid=event.pid,
                value=event.value,
                round=event.round,
                index=index,
                length=depth[index],
                nodes=nodes,
            )
            attribution = attribute_decision(events, index, graph=graph)
            if attribution is not None:
                path.legs, path.wall_latency_s = attribution
            paths.append(path)
        return paths


# -- live wall-latency attribution ------------------------------------------


def _wall(event: Event) -> float | None:
    if isinstance(event.extra, dict):
        wall = event.extra.get("wall_s")
        if isinstance(wall, (int, float)):
            return float(wall)
    return None


def attribute_decision(
    events: Sequence[Event],
    decide_index: int,
    *,
    graph: CausalGraph | None = None,
) -> tuple[list[Leg], float] | None:
    """Split one live decision's wall latency into named legs.

    Returns ``(legs, wall_latency_s)`` or ``None`` for traces without
    wall stamps (the deterministic engines).  The model: a live round
    closes when its last dependency resolves — either the slowest
    round message is consumed or the detector supplies the missing
    suspicion — so each round's leg runs from the previous round's
    close to this one's, and is labelled by what resolved last.  The
    legs tile ``[first own action, decide]`` exactly, so their sum *is*
    the reported wall latency.
    """
    decide = events[decide_index]
    decide_wall = _wall(decide)
    if decide_wall is None or decide.pid is None or decide.round is None:
        return None
    pid = decide.pid
    if graph is None:
        graph = annotate(events)

    own_walls = [
        wall
        for i in graph.events_of(pid)
        if i <= decide_index and (wall := _wall(events[i])) is not None
    ]
    if not own_walls:
        return None
    start = min(own_walls)

    suspicions = [
        (wall, event)
        for event in events
        if event.kind == "suspect" and event.pid == pid
        and (wall := _wall(event)) is not None
    ]
    suspicions.sort(key=lambda item: item[0])

    legs: list[Leg] = []
    cursor = start
    for round_index in range(1, decide.round + 1):
        deliveries = [
            (wall, event)
            for event in events
            if event.kind == "msg_delivered"
            and event.pid == pid
            and event.round == round_index
            and (wall := _wall(event)) is not None
        ]
        gating = max(deliveries, default=None, key=lambda item: item[0])
        close = gating[0] if gating is not None else cursor
        # A suspicion by this process inside the round's window ended a
        # wait no delivery could: it closes the round when it resolves
        # after every consumed message.
        window_suspicions = [
            (wall, event)
            for wall, event in suspicions
            if cursor < wall <= max(close, cursor) or (
                gating is None and cursor < wall <= decide_wall
            )
        ]
        kind, via = "send", None
        if gating is not None:
            _, gate_event = gating
            extra = gate_event.extra if isinstance(gate_event.extra, dict) else {}
            via = extra.get("msg_id")
            if extra.get("retransmits", 0):
                kind = "retransmit"
        if window_suspicions and (
            gating is None or window_suspicions[-1][0] >= gating[0]
        ):
            close = max(close, window_suspicions[-1][0])
            kind, via = "detector-wait", window_suspicions[-1][1].peer
        close = min(max(close, cursor), decide_wall)
        if close > cursor:
            legs.append(
                Leg(
                    kind=kind,
                    seconds=close - cursor,
                    round=round_index,
                    via=via,
                )
            )
        cursor = close
    if decide_wall > cursor:
        legs.append(Leg(kind="local", seconds=decide_wall - cursor))
    return legs, decide_wall - start


# -- suspicion forensics -----------------------------------------------------


@dataclass
class SuspicionReport:
    """Why one ``suspect`` event fired, against the ground truth."""

    observer: int
    suspected: int
    index: int
    wall_s: float | None = None
    delay: Any = None  # engine-reported suspicion latency
    justified: bool | None = None  # None when no ground truth in trace
    crash_wall_s: float | None = None
    misses: int | None = None  # silent monitor passes at suspicion
    threshold: int | None = None
    last_heard_s: float | None = None
    silence_s: float | None = None  # the missed-heartbeat window

    def to_dict(self) -> dict[str, Any]:
        return {
            key: value
            for key, value in self.__dict__.items()
            if value is not None or key in ("observer", "suspected", "justified")
        }


def suspicion_forensics(events: Sequence[Event]) -> list[SuspicionReport]:
    """Audit every suspicion in a trace.

    ``justified`` means the suspected process's crash is in the trace
    and (when walls are known) happened before the suspicion — the
    strong accuracy clause of P.  The missed-heartbeat window
    ``[last_heard_s, wall_s]`` comes from the live detector's
    forensics fields and is the causal cut the suspicion rests on: no
    event of the suspected process after ``last_heard_s`` reached the
    observer's module before it fired.
    """
    crash_index: dict[int, int] = {}
    crash_wall: dict[int, float] = {}
    for index, event in enumerate(events):
        if event.kind == "crash" and event.pid is not None:
            crash_index.setdefault(event.pid, index)
            wall = _wall(event)
            if wall is not None:
                crash_wall.setdefault(event.pid, wall)

    reports: list[SuspicionReport] = []
    for index, event in enumerate(events):
        if event.kind != "suspect":
            continue
        report = SuspicionReport(
            observer=event.pid,
            suspected=event.peer,
            index=index,
            wall_s=_wall(event),
            delay=event.value,
        )
        extra = event.extra if isinstance(event.extra, dict) else {}
        report.misses = extra.get("misses")
        report.threshold = extra.get("threshold")
        report.last_heard_s = extra.get("last_heard_s")
        if report.wall_s is not None and report.last_heard_s is not None:
            report.silence_s = report.wall_s - report.last_heard_s
        if event.peer in crash_index:
            report.crash_wall_s = crash_wall.get(event.peer)
            if report.wall_s is not None and report.crash_wall_s is not None:
                report.justified = report.crash_wall_s <= report.wall_s
            else:
                # Deterministic engines: P's strong accuracy makes any
                # in-trace crash ground truth for the suspicion.
                report.justified = True
        else:
            report.justified = False
        reports.append(report)
    return reports


# -- Λ-bound verification ----------------------------------------------------


def is_round_trace(events: Sequence[Event]) -> bool:
    """True for traces of the round models (incl. live round sessions)."""
    return any(event.kind == "round_start" for event in events)


def verify_round_paths(
    events: Sequence[Event], *, graph: CausalGraph | None = None
) -> list[str]:
    """Check every decision's critical path against the round count.

    In the round models sends precede deliveries within each round, so
    no causal chain can cross two message hops in one round: a decision
    at round ``r`` sits at depth at most ``r``.  Algorithms that
    message every round (the flooding family) meet the bound with
    equality — their depth *is* the decide round, the paper's Λ count —
    while one-shot algorithms like A1 decide at depth Λ(A1)=1 even when
    the decide formally lands in a later round (the extra rounds add no
    causal work).  A depth *exceeding* the decide round means the
    happens-before reconstruction or the trace itself is broken.
    Returns human-readable anomalies (empty when clean).  Non-round
    traces (step kernel, emulation lifts) are skipped: their depths
    count SP/SS steps, not rounds.
    """
    if not is_round_trace(events):
        return []
    problems: list[str] = []
    for path in critical_paths(events, graph=graph):
        if path.round is not None and path.length > path.round:
            problems.append(
                f"p{path.pid} decided at round {path.round} but its "
                f"critical path has {path.length} message hops"
            )
    return problems


# -- one-call cell summary ---------------------------------------------------


def causal_summary(
    events: Sequence[Event], *, graph: CausalGraph | None = None
) -> dict[str, Any]:
    """The causal facts of one trace, JSON-ready.

    The per-cell block ``repro causal`` prints and the report layer
    embeds: clock kind, graph size, every decision's critical path,
    Λ-bound anomalies, suspicion audits — and for live traces the
    slowest decision's retransmit share (the fraction of its wall
    latency spent inside retransmitted gating legs, i.e. how much of
    the tail the lossy network bought).
    """
    if graph is None:
        graph = annotate(events)
    paths = critical_paths(events, graph=graph)
    summary: dict[str, Any] = {
        "clock": clock_kind(events),
        "events": len(events),
        "message_edges": sum(
            1
            for edges in graph.parents
            for edge in edges
            if edge.kind == "message"
        ),
        "decisions": [path.to_dict() for path in paths],
        "max_path_length": max((path.length for path in paths), default=0),
        "anomalies": verify_round_paths(events, graph=graph),
        "suspicions": [
            report.to_dict() for report in suspicion_forensics(events)
        ],
    }
    timed = [path for path in paths if path.wall_latency_s]
    if timed:
        slowest = max(timed, key=lambda path: path.wall_latency_s)
        retransmit = sum(
            leg.seconds for leg in slowest.legs if leg.kind == "retransmit"
        )
        summary["slowest_decision"] = {
            "pid": slowest.pid,
            "wall_latency_s": slowest.wall_latency_s,
            "retransmit_share": round(
                retransmit / slowest.wall_latency_s, 4
            ),
        }
    return summary
