"""Tests for FloodSet (Figure 1) and FloodSetWS (Figure 2)."""

from __future__ import annotations

import pytest

from repro.analysis import latency_profile, verify_algorithm
from repro.consensus import FloodSet, FloodSetWS, check_uniform_consensus_run
from repro.rounds import (
    FailureScenario,
    RoundModel,
    run_rs,
    run_rws,
)
from repro.workloads import crash_mid_broadcast, floodset_rws_violation


class TestFloodSetUnit:
    def test_initial_state_is_singleton(self):
        state = FloodSet().initial_state(0, 3, 1, 7)
        assert state.W == frozenset({7})
        assert state.decision is None

    def test_messages_broadcast_w_through_round_t_plus_one(self):
        algorithm = FloodSet()
        state = algorithm.initial_state(0, 3, 1, 0)
        assert set(algorithm.messages(0, state)) == {0, 1, 2}

    def test_messages_stop_after_t_plus_one_rounds(self):
        algorithm = FloodSet()
        state = algorithm.initial_state(0, 3, 1, 0)
        state = algorithm.transition(0, state, {0: frozenset({0})})
        state = algorithm.transition(0, state, {})
        assert algorithm.messages(0, state) == {}

    def test_transition_unions_received_sets(self):
        algorithm = FloodSet()
        state = algorithm.initial_state(0, 3, 1, 2)
        state = algorithm.transition(
            0, state, {1: frozenset({0}), 2: frozenset({1})}
        )
        assert state.W == frozenset({0, 1, 2})

    def test_decides_min_at_round_t_plus_one(self):
        algorithm = FloodSet()
        state = algorithm.initial_state(0, 3, 1, 2)
        state = algorithm.transition(0, state, {1: frozenset({1})})
        assert state.decision is None
        state = algorithm.transition(0, state, {})
        assert state.decision == 1

    def test_halted_once_decided(self):
        algorithm = FloodSet()
        state = algorithm.initial_state(0, 2, 0, 5)
        assert not algorithm.halted(0, state)
        state = algorithm.transition(0, state, {})
        assert algorithm.halted(0, state)


class TestFloodSetInRS:
    @pytest.mark.parametrize("n,t", [(2, 1), (3, 1), (3, 2), (4, 2)])
    def test_uniform_consensus_exhaustively(self, n, t):
        report = verify_algorithm(FloodSet(), n, t, RoundModel.RS)
        assert report.ok, report.first_violations()

    @pytest.mark.parametrize("n,t", [(3, 1), (4, 2)])
    def test_latency_is_exactly_t_plus_one(self, n, t):
        profile = latency_profile(FloodSet(), n, t, RoundModel.RS)
        assert profile.lat == t + 1
        assert profile.Lat == t + 1
        assert profile.Lambda == t + 1

    def test_partial_broadcast_value_still_propagates(self):
        run = run_rs(
            FloodSet(), [0, 1, 1], crash_mid_broadcast(3, reached=(1,)), t=1
        )
        assert run.decision_value(1) == 0
        assert run.decision_value(2) == 0


class TestFloodSetInRWS:
    def test_paper_violation_scenario(self):
        """Plain FloodSet disagrees under the pending-value scenario."""
        run = run_rws(
            FloodSet(), [0, 1, 1], floodset_rws_violation(3), t=1
        )
        violations = check_uniform_consensus_run(run)
        assert any(v.clause == "uniform agreement" for v in violations)
        # Concretely: p1 saw the smuggled 0, p2 did not.
        assert run.decision_value(1) == 0
        assert run.decision_value(2) == 1

    def test_violation_found_by_enumeration(self):
        report = verify_algorithm(
            FloodSet(), 3, 1, RoundModel.RWS, stop_after=1
        )
        assert not report.ok


class TestFloodSetWS:
    def test_halt_grows_on_silence(self):
        algorithm = FloodSetWS()
        state = algorithm.initial_state(0, 3, 1, 0)
        state = algorithm.transition(0, state, {0: frozenset({0})})
        assert state.halt == frozenset({1, 2})

    def test_halted_senders_are_ignored(self):
        algorithm = FloodSetWS()
        state = algorithm.initial_state(0, 3, 1, 1)
        state = algorithm.transition(0, state, {0: frozenset({1})})
        assert 2 in state.halt
        # p2's late message carries 0 — must be discarded.
        state = algorithm.transition(
            0, state, {0: frozenset({1}), 2: frozenset({0})}
        )
        assert 0 not in state.W

    def test_survives_the_floodset_killer_scenario(self):
        run = run_rws(
            FloodSetWS(), [0, 1, 1], floodset_rws_violation(3), t=1
        )
        assert check_uniform_consensus_run(run) == []
        assert run.decision_value(1) == run.decision_value(2) == 1

    @pytest.mark.parametrize("model", [RoundModel.RS, RoundModel.RWS])
    def test_uniform_consensus_exhaustively(self, model):
        report = verify_algorithm(FloodSetWS(), 3, 1, model)
        assert report.ok, report.first_violations()

    def test_latency_matches_floodset(self):
        profile = latency_profile(FloodSetWS(), 3, 1, RoundModel.RWS)
        assert profile.Lat == 2
        assert profile.Lambda == 2

    def test_rws_t2_safety_sampled(self):
        # The exhaustive t=2 RWS space is astronomically large (the
        # pending fan-out of two crashing processes); sample it instead.
        import random

        report = verify_algorithm(
            FloodSetWS(), 4, 2, RoundModel.RWS,
            sample=400, rng=random.Random(20),
        )
        assert report.ok, report.first_violations()


class TestUnanimityInvariant:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_input_forces_that_decision(self, value):
        run = run_rs(
            FloodSet(),
            [value] * 3,
            crash_mid_broadcast(3, reached=(2,)),
            t=1,
        )
        assert run.decided_values() <= {value}
