"""Small descriptive-statistics helpers for benches and reports."""

from repro.stats.summary import Summary, summarize, rate

__all__ = ["Summary", "summarize", "rate"]
