"""The step adapter: Chandra–Toueg on live channels and heartbeat ◊P/P.

:class:`~repro.fdconsensus.chandra_toueg.ChandraTouegConsensus` is a
:class:`~repro.simulation.automaton.StepAutomaton` — in the simulation
it is driven by a step scheduler and a pre-drawn detector history.
Here each process is an asyncio task that repeatedly builds a
:class:`~repro.simulation.automaton.StepContext` from its live inbox
and its *heartbeat* detector module's current suspect set, applies
``on_step``, and ships the outcome's (at most one) message through the
reliable transport.

Pacing is event-driven: a step that made no progress (no send, no
state change, nothing consumed) blocks on the process's wake event,
which the router sets on message arrival and the detector on new
suspicions — the two inputs that can unblock a waiting phase
(collecting a majority, awaiting a proposal-or-suspicion).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING

from repro.live.cluster import STEP_MSG
from repro.simulation.automaton import StepAutomaton, StepContext
from repro.simulation.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.cluster import LiveCluster


async def run_steps_session(
    cluster: "LiveCluster",
    session: int,
    pid: int,
    automaton: StepAutomaton,
) -> None:
    """Drive ``pid``'s automaton until it decides and drains its outbox."""
    config = cluster.config
    transport = cluster.transport
    proc = cluster.procs[pid]
    record = session == 0 and config.record_events
    inbox = proc.steps.setdefault(session, deque())

    state = automaton.initial_state(pid, config.n)
    local_step = 0
    uid = 0
    decided = False

    while True:
        proc.wake.clear()
        received = []
        while inbox:
            message, mid = inbox.popleft()
            received.append(message)
            if record:
                cluster.record(
                    "msg_delivered",
                    pid=message.sender,
                    peer=pid,
                    extra=transport.delivery_extra(mid),
                )

        local_step += 1
        context = StepContext(
            pid=pid,
            n=config.n,
            state=state,
            received=tuple(received),
            local_step=local_step,
            suspects=cluster.detector.suspected_by(pid),
        )
        outcome = automaton.on_step(context)
        previous, state = state, outcome.state

        if outcome.send_to is not None:
            uid += 1
            message = Message(
                uid=pid * 1_000_000 + uid,
                sender=pid,
                recipient=outcome.send_to,
                payload=outcome.payload,
                sent_step=local_step,
            )
            mid = (
                transport.register_message(pid, outcome.send_to)
                if record
                else None
            )
            if record:
                cluster.record(
                    "msg_sent",
                    pid=pid,
                    peer=outcome.send_to,
                    extra={"msg_id": mid},
                )
            if outcome.send_to == pid:
                transport.deliver_local(
                    pid, (STEP_MSG, session, message, mid), msg_id=mid
                )
            else:
                transport.post_reliable(
                    pid,
                    outcome.send_to,
                    (STEP_MSG, session, message, mid),
                    msg_id=mid,
                )

        if not decided and getattr(state, "decided", False):
            decided = True
            cluster.record_decision(
                session, pid, state.round, state.decision
            )

        if decided and not state.outbox:
            break

        progress = (
            outcome.send_to is not None
            or bool(received)
            or state != previous
        )
        if progress:
            await asyncio.sleep(0)
        else:
            await proc.wake.wait()

    if record:
        cluster.record("halt", pid=pid)
