"""Delta-debugging shrinker: reduce a failing case to a minimal one.

Given a request whose oracles fail and a predicate ``still_fails``, the
shrinker greedily applies *minimality moves* until none is accepted —
a ddmin-style fixpoint over a structured mutation space instead of a
flat token list.  Moves are ordered by how much they simplify the
counterexample a human has to read:

1. drop a whole crash (pattern or scenario);
2. drop one process (``n - 1``, remapping nothing — the removed pid is
   always the highest);
3. drop a pending message (RWS scenarios);
4. move a crash earlier (halve a step time, decrement a round);
5. shrink a crash's reached-recipient set;
6. clear an ``applies_transition`` flag;
7. zero an initial value.

Every mutant is validated for its model before the predicate runs, so
the shrinker can never "simplify" a counterexample into an
inadmissible adversary.  The result: fewest crashes first, then
smallest ``n``, then earliest crash times — exactly the order in which
the generators' Hypothesis counterparts shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Iterator

from repro.failures.pattern import FailurePattern
from repro.rounds.scenario import (
    CrashEvent,
    FailureScenario,
    PendingMessage,
    validate_scenario,
)
from repro.runtime.request import ExecutionRequest


@dataclass
class ShrinkResult:
    """A shrinking run's outcome."""

    request: ExecutionRequest
    attempts: int
    accepted: int


def _replace_request(request: ExecutionRequest, **changes) -> ExecutionRequest:
    return dc_replace(request, **changes)


def _admissible(request: ExecutionRequest) -> bool:
    """A mutant must stay a well-formed case for its engine."""
    if request.n < 2 or request.t < 1 or request.t >= request.n:
        return False
    if request.engine in ("rounds", "vector"):
        return not validate_scenario(
            request.scenario,
            t=request.t,
            allow_pending=(request.model == "RWS"),
            horizon=request.max_rounds,
        )
    return len(request.pattern.faulty) <= request.t


def _pattern_moves(request: ExecutionRequest) -> Iterator[ExecutionRequest]:
    pattern = request.pattern
    for pid in sorted(pattern.crash_times):
        crashes = dict(pattern.crash_times)
        del crashes[pid]
        yield _replace_request(
            request, pattern=FailurePattern.with_crashes(pattern.n, crashes)
        )
    for pid, time in sorted(pattern.crash_times.items()):
        if time > 0:
            crashes = dict(pattern.crash_times)
            crashes[pid] = time // 2
            yield _replace_request(
                request,
                pattern=FailurePattern.with_crashes(pattern.n, crashes),
            )


def _scenario_without_crash(
    scenario: FailureScenario, pid: int
) -> FailureScenario:
    crashes = tuple(e for e in scenario.crashes if e.pid != pid)
    pending = frozenset(p for p in scenario.pending if p.sender != pid)
    return FailureScenario(n=scenario.n, crashes=crashes, pending=pending)


def _with_crash(
    scenario: FailureScenario, event: CrashEvent
) -> FailureScenario:
    crashes = tuple(
        event if e.pid == event.pid else e for e in scenario.crashes
    )
    return FailureScenario(
        n=scenario.n, crashes=crashes, pending=scenario.pending
    )


def _scenario_moves(request: ExecutionRequest) -> Iterator[ExecutionRequest]:
    scenario = request.scenario
    for event in scenario.crashes:
        yield _replace_request(
            request, scenario=_scenario_without_crash(scenario, event.pid)
        )
    for pend in sorted(
        scenario.pending, key=lambda m: (m.round, m.sender, m.recipient)
    ):
        yield _replace_request(
            request,
            scenario=FailureScenario(
                n=scenario.n,
                crashes=scenario.crashes,
                pending=scenario.pending - {pend},
            ),
        )
    for event in scenario.crashes:
        if event.round > 1:
            yield _replace_request(
                request,
                scenario=_with_crash(
                    scenario, dc_replace(event, round=event.round - 1)
                ),
            )
    for event in scenario.crashes:
        for gone in sorted(event.sent_to):
            yield _replace_request(
                request,
                scenario=_with_crash(
                    scenario,
                    dc_replace(
                        event,
                        sent_to=event.sent_to - {gone},
                        applies_transition=False,
                    ),
                ),
            )
    for event in scenario.crashes:
        if event.applies_transition:
            yield _replace_request(
                request,
                scenario=_with_crash(
                    scenario, dc_replace(event, applies_transition=False)
                ),
            )


def _drop_process(request: ExecutionRequest) -> Iterator[ExecutionRequest]:
    """Remove the highest pid; only ever shrinks, never renumbers."""
    n = request.n
    if n <= 3:  # the engines' smallest interesting system
        return
    gone = n - 1
    values = request.values[:-1]
    t = min(request.t, n - 2)
    if request.engine in ("rounds", "vector"):
        scenario = request.scenario
        crashes = tuple(
            dc_replace(
                e,
                sent_to=frozenset(q for q in e.sent_to if q != gone),
                applies_transition=(
                    e.applies_transition
                    and e.sent_to - {gone}
                    == frozenset(range(n - 1)) - {e.pid}
                ),
            )
            for e in scenario.crashes
            if e.pid != gone
        )
        pending = frozenset(
            p
            for p in scenario.pending
            if p.sender != gone and p.recipient != gone
        )
        yield _replace_request(
            request,
            values=values,
            t=t,
            scenario=FailureScenario(n=n - 1, crashes=crashes, pending=pending),
        )
    else:
        crashes = {
            pid: time
            for pid, time in request.pattern.crash_times.items()
            if pid != gone
        }
        yield _replace_request(
            request,
            values=values,
            t=t,
            pattern=FailurePattern.with_crashes(n - 1, crashes),
        )


def _value_moves(request: ExecutionRequest) -> Iterator[ExecutionRequest]:
    for index, value in enumerate(request.values):
        if value != 0:
            values = (
                request.values[:index] + (0,) + request.values[index + 1 :]
            )
            yield _replace_request(request, values=values)


def shrink_moves(request: ExecutionRequest) -> Iterator[ExecutionRequest]:
    """Candidate one-step simplifications, most aggressive first."""
    if request.engine in ("rounds", "vector"):
        yield from _scenario_moves(request)
    else:
        yield from _pattern_moves(request)
    yield from _drop_process(request)
    yield from _value_moves(request)


def shrink(
    request: ExecutionRequest,
    still_fails: Callable[[ExecutionRequest], bool],
    *,
    max_attempts: int = 400,
) -> ShrinkResult:
    """Greedy fixpoint reduction of a failing request.

    ``still_fails`` re-executes a mutant and reports whether any oracle
    still rejects it; a mutant that passes is discarded and the search
    continues from the last failing request.  Deterministic: moves are
    enumerated in a fixed order and the first accepted one restarts the
    scan, so equal inputs shrink identically.
    """
    attempts = 0
    accepted = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for mutant in shrink_moves(request):
            if attempts >= max_attempts:
                break
            if not _admissible(mutant):
                continue
            attempts += 1
            if still_fails(mutant):
                request = mutant
                accepted += 1
                improved = True
                break
    return ShrinkResult(request=request, attempts=attempts, accepted=accepted)
