"""Small descriptive-statistics helpers for benches and reports."""

from repro.stats.summary import Summary, percentile, summarize, rate

__all__ = ["Summary", "percentile", "summarize", "rate"]
