"""The Chandra–Toueg ◊S rotating-coordinator consensus algorithm."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.failures.detectors import EventuallyStrongDetector
from repro.failures.pattern import FailurePattern
from repro.simulation.automaton import StepAutomaton, StepContext, StepOutcome
from repro.simulation.executor import StepExecutor
from repro.simulation.run import Run
from repro.simulation.schedulers import RandomScheduler

# Message kinds.
ESTIMATE = "estimate"
PROPOSE = "propose"
ACK = "ack"
NACK = "nack"
DECIDE = "decide"

# Phases within an asynchronous round.
SEND_ESTIMATE = 1
COORDINATE = 2
AWAIT_PROPOSAL = 3
COLLECT_REPLIES = 4


@dataclass(frozen=True)
class CTState:
    """Per-process state of the rotating-coordinator algorithm.

    Attributes:
        round: Current asynchronous round (1-based).
        phase: Current phase within the round.
        estimate: The process's current estimate of the decision.
        ts: Round in which ``estimate`` was last adopted from a
            coordinator (0 = never; the initial value).
        decided: Whether an irrevocable decision was taken.
        decision: The decided value (``None`` until decided).
        outbox: Messages queued for sending, one per step.
        estimates: Per round: ``sender -> (estimate, ts)`` collected by
            a coordinator in phase 2.
        replies: Per round: ``sender -> True/False`` (ACK/NACK)
            collected by a coordinator in phase 4.
        proposals: Per round: the coordinator's proposed estimate, as
            observed by this process.
        relayed: Whether the DECIDE relay was already queued.
    """

    round: int = 1
    phase: int = SEND_ESTIMATE
    estimate: Any = None
    ts: int = 0
    decided: bool = False
    decision: Any = None
    outbox: tuple = ()
    estimates: Mapping[int, Mapping[int, tuple]] = field(default_factory=dict)
    replies: Mapping[int, Mapping[int, bool]] = field(default_factory=dict)
    proposals: Mapping[int, Any] = field(default_factory=dict)
    relayed: bool = False


class ChandraTouegConsensus(StepAutomaton):
    """◊S consensus on the asynchronous step kernel (n > 2t).

    One shared instance serves all processes; initial values come from
    the constructor.  Wait conditions ("collect a majority", "proposal
    or suspicion") are re-evaluated on every step, and the one-send-per-
    step discipline is respected through an outbox queue.
    """

    def __init__(self, n: int, t: int, values: Sequence[Any]) -> None:
        if n <= 2 * t:
            raise ConfigurationError(
                f"the rotating-coordinator algorithm needs n > 2t "
                f"(got n={n}, t={t})"
            )
        if len(values) != n:
            raise ConfigurationError("one initial value per process required")
        self.n = n
        self.t = t
        self.values = tuple(values)
        self.majority = n // 2 + 1

    # -- helpers ----------------------------------------------------------------

    def coordinator(self, round_index: int) -> int:
        return (round_index - 1) % self.n

    def initial_state(self, pid: int, n: int) -> CTState:
        return CTState(estimate=self.values[pid])

    @staticmethod
    def _queue(state: CTState, recipient: int, payload: tuple) -> CTState:
        return replace(state, outbox=state.outbox + ((recipient, payload),))

    def _queue_all(self, state: CTState, pid: int, payload: tuple) -> CTState:
        for recipient in range(self.n):
            if recipient != pid:
                state = self._queue(state, recipient, payload)
        return state

    def _decide(self, state: CTState, pid: int, value: Any) -> CTState:
        """Adopt a decision and queue the reliable-broadcast relay."""
        if state.decided:
            return state
        state = replace(
            state, decided=True, decision=value, estimate=value
        )
        if not state.relayed:
            state = self._queue_all(state, pid, (DECIDE, value))
            state = replace(state, relayed=True)
        return state

    # -- message ingestion --------------------------------------------------------

    def _ingest(self, state: CTState, ctx: StepContext) -> CTState:
        estimates = {r: dict(v) for r, v in state.estimates.items()}
        replies = {r: dict(v) for r, v in state.replies.items()}
        proposals = dict(state.proposals)
        for message in ctx.received:
            kind = message.payload[0]
            if kind == ESTIMATE:
                _, round_index, estimate, ts = message.payload
                estimates.setdefault(round_index, {})[message.sender] = (
                    estimate,
                    ts,
                )
            elif kind == PROPOSE:
                _, round_index, estimate = message.payload
                proposals[round_index] = estimate
            elif kind in (ACK, NACK):
                _, round_index = message.payload
                replies.setdefault(round_index, {})[message.sender] = (
                    kind == ACK
                )
            elif kind == DECIDE:
                _, value = message.payload
                state = self._decide(state, ctx.pid, value)
        return replace(
            state, estimates=estimates, replies=replies, proposals=proposals
        )

    # -- the step function ----------------------------------------------------------

    def on_step(self, ctx: StepContext) -> StepOutcome:
        state: CTState = self._ingest(ctx.state, ctx)

        # Drain the outbox first: one message per step.
        if state.outbox:
            (recipient, payload), rest = state.outbox[0], state.outbox[1:]
            return StepOutcome(
                state=replace(state, outbox=rest),
                send_to=recipient,
                payload=payload,
            )

        if state.decided:
            return StepOutcome(state=state)

        state = self._advance(state, ctx)
        # Send at most one queued message this step (if _advance queued).
        if state.outbox:
            (recipient, payload), rest = state.outbox[0], state.outbox[1:]
            return StepOutcome(
                state=replace(state, outbox=rest),
                send_to=recipient,
                payload=payload,
            )
        return StepOutcome(state=state)

    def _advance(self, state: CTState, ctx: StepContext) -> CTState:
        pid = ctx.pid
        round_index = state.round
        coordinator = self.coordinator(round_index)

        if state.phase == SEND_ESTIMATE:
            payload = (ESTIMATE, round_index, state.estimate, state.ts)
            if coordinator == pid:
                # Self-delivery of the coordinator's own estimate.
                estimates = {
                    r: dict(v) for r, v in state.estimates.items()
                }
                estimates.setdefault(round_index, {})[pid] = (
                    state.estimate,
                    state.ts,
                )
                state = replace(state, estimates=estimates)
            else:
                state = self._queue(state, coordinator, payload)
            next_phase = COORDINATE if coordinator == pid else AWAIT_PROPOSAL
            return replace(state, phase=next_phase)

        if state.phase == COORDINATE:
            collected = state.estimates.get(round_index, {})
            if len(collected) < self.majority:
                return state  # keep waiting
            best_sender = min(
                collected,
                key=lambda sender: (-collected[sender][1], sender),
            )
            proposal = collected[best_sender][0]
            proposals = dict(state.proposals)
            proposals[round_index] = proposal
            state = replace(state, proposals=proposals)
            state = self._queue_all(
                state, pid, (PROPOSE, round_index, proposal)
            )
            return replace(state, phase=AWAIT_PROPOSAL)

        if state.phase == AWAIT_PROPOSAL:
            proposal = state.proposals.get(round_index)
            if proposal is not None:
                state = replace(
                    state, estimate=proposal, ts=round_index
                )
                reply: tuple = (ACK, round_index)
                acked = True
            elif ctx.suspects is not None and coordinator in ctx.suspects:
                reply = (NACK, round_index)
                acked = False
            else:
                return state  # keep waiting: proposal or suspicion
            if coordinator == pid:
                replies = {r: dict(v) for r, v in state.replies.items()}
                replies.setdefault(round_index, {})[pid] = acked
                state = replace(state, replies=replies)
            else:
                state = self._queue(state, coordinator, reply)
            if coordinator == pid:
                return replace(state, phase=COLLECT_REPLIES)
            # Non-coordinators move on to the next round immediately.
            return replace(
                state, round=round_index + 1, phase=SEND_ESTIMATE
            )

        if state.phase == COLLECT_REPLIES:
            collected = state.replies.get(round_index, {})
            if len(collected) < self.majority:
                return state
            acks = sum(1 for acked in collected.values() if acked)
            if acks >= self.majority:
                proposal = state.proposals[round_index]
                return self._decide(state, pid, proposal)
            return replace(
                state, round=round_index + 1, phase=SEND_ESTIMATE
            )

        raise ExecutionError(f"unknown phase {state.phase}")  # pragma: no cover


def run_ct_consensus(
    values: Sequence[Any],
    pattern: FailurePattern,
    *,
    t: int | None = None,
    rng: random.Random | None = None,
    stabilization_time: int = 60,
    false_suspicion_prob: float = 0.2,
    max_steps: int = 6_000,
    delivery_prob: float = 0.5,
    max_age: int = 30,
) -> Run:
    """Execute ◊S consensus under a random asynchronous schedule.

    The detector history comes from
    :class:`~repro.failures.detectors.EventuallyStrongDetector`: before
    ``stabilization_time`` it may suspect correct processes (driving
    NACKs and wasted rounds), after it some correct process is trusted
    forever — the liveness lever.
    """
    n = len(values)
    resilience = t if t is not None else (n - 1) // 2
    if rng is None:
        rng = random.Random(0)
    algorithm = ChandraTouegConsensus(n, resilience, values)
    detector = EventuallyStrongDetector(
        stabilization_time=stabilization_time,
        false_suspicion_prob=false_suspicion_prob,
    )
    history = detector.history(pattern, horizon=max_steps, rng=rng)
    executor = StepExecutor(
        algorithm,
        n,
        pattern,
        RandomScheduler(rng, delivery_prob=delivery_prob, max_age=max_age),
        history=history,
    )

    def all_correct_decided(states: Mapping[int, CTState]) -> bool:
        undrained = any(
            states[pid].outbox for pid in pattern.correct
        )
        return not undrained and all(
            states[pid].decided for pid in pattern.correct
        )

    return executor.execute(max_steps, stop_when=all_correct_decided)


def ct_decisions(run: Run) -> dict[int, Any]:
    """The decision of every process that decided in the run."""
    return {
        pid: state.decision
        for pid, state in run.final_states.items()
        if isinstance(state, CTState) and state.decided
    }
