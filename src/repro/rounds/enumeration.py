"""Exhaustive and randomized generation of failure scenarios.

Exhaustive enumeration over a bounded adversary space is what turns the
paper's latency definitions — which quantify over *all* runs — into
exact, mechanically checkable computations:

* ``lat(A)   = min over all runs`` of the latency degree;
* ``lat(A,C) = min over runs from initial configuration C``;
* ``Lat(A)   = max over C of lat(A, C)``;
* ``Lat(A,f) = max over runs with at most f crashes``;
* ``Λ(A)     = min over f of Lat(A, f) = Lat(A, 0)``.

The space is the product of crash choices (victims × crash rounds ×
reached-recipient subsets × transition flag) and, for RWS, pending-set
choices consistent with weak round synchrony.  Counts grow fast; the
defaults target the paper's regimes (n ≤ 4, t ≤ 2, horizons ≤ t + 2).
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.rounds.scenario import (
    CrashEvent,
    FailureScenario,
    PendingMessage,
    validate_scenario,
)


def all_value_assignments(
    n: int, domain: Sequence[Any] = (0, 1)
) -> Iterator[tuple[Any, ...]]:
    """Every initial configuration over ``domain`` (default binary)."""
    yield from itertools.product(domain, repeat=n)


def all_crash_events(
    pid: int, n: int, max_round: int, *, include_transition: bool = True
) -> Iterator[CrashEvent]:
    """Every way process ``pid`` can crash within ``max_round`` rounds."""
    others = [q for q in range(n) if q != pid]
    for round_index in range(1, max_round + 1):
        for size in range(len(others) + 1):
            for subset in itertools.combinations(others, size):
                yield CrashEvent(
                    pid=pid, round=round_index, sent_to=frozenset(subset)
                )
                if include_transition and size == len(others):
                    yield CrashEvent(
                        pid=pid,
                        round=round_index,
                        sent_to=frozenset(subset),
                        applies_transition=True,
                    )


def _pending_candidates(
    n: int, crashes: Sequence[CrashEvent], max_round: int
) -> list[PendingMessage]:
    """Pending messages compatible with weak round synchrony.

    Only messages whose sender crashes by the following round can be
    withheld from a live recipient, so candidates come exclusively from
    crashing processes: messages of their crash round (those actually
    sent) and — when the process does not apply its crash round's
    transition — of the round before it.  (A process that applies its
    round-``r`` transition cannot have a pending round-``r-1`` message:
    in the SP emulation the recipient's suspicion proves the sender
    crashed before that recipient even sent its round-``r`` message,
    which the sender would need to complete round ``r``.)
    """
    candidates: list[PendingMessage] = []
    for event in crashes:
        others = [q for q in range(n) if q != event.pid]
        # Messages of the crash round itself: those in sent_to.
        for recipient in event.sent_to:
            if event.round <= max_round:
                candidates.append(
                    PendingMessage(event.pid, recipient, event.round)
                )
        # Messages of the previous round: all were sent (the process was
        # then still executing normally), but only a process that does
        # not complete its crash round may have them pending.
        if (
            event.round >= 2
            and event.round - 1 <= max_round
            and not event.applies_transition
        ):
            for recipient in others:
                candidates.append(
                    PendingMessage(event.pid, recipient, event.round - 1)
                )
    return candidates


def all_scenarios(
    n: int,
    t: int,
    *,
    max_round: int,
    allow_pending: bool,
    include_transition: bool = True,
    max_pending_sets: int | None = None,
) -> Iterator[FailureScenario]:
    """Enumerate every admissible scenario with at most ``t`` crashes.

    With ``allow_pending`` (the RWS model) each crash pattern fans out
    over all weak-round-synchrony-consistent pending subsets;
    ``max_pending_sets`` truncates that fan-out when the full power set
    is unnecessary.

    Every yielded scenario passes :func:`validate_scenario`.
    """
    if t >= n:
        raise ConfigurationError(f"t={t} must be < n={n}")
    for f in range(t + 1):
        for victims in itertools.combinations(range(n), f):
            event_choices = [
                list(
                    all_crash_events(
                        pid, n, max_round, include_transition=include_transition
                    )
                )
                for pid in victims
            ]
            for events in itertools.product(*event_choices):
                base = FailureScenario(n=n, crashes=tuple(events))
                if not allow_pending:
                    yield base
                    continue
                candidates = _pending_candidates(n, events, max_round)
                count = 0
                for size in range(len(candidates) + 1):
                    for pending in itertools.combinations(candidates, size):
                        scenario = FailureScenario(
                            n=n,
                            crashes=tuple(events),
                            pending=frozenset(pending),
                        )
                        if validate_scenario(
                            scenario, t=t, allow_pending=True
                        ):
                            continue  # inconsistent combination; skip
                        yield scenario
                        count += 1
                        if (
                            max_pending_sets is not None
                            and count >= max_pending_sets
                        ):
                            break
                    else:
                        continue
                    break


def relabel_scenario(
    scenario: FailureScenario, perm: Sequence[int]
) -> FailureScenario:
    """``scenario`` with every process id mapped through ``perm``.

    ``perm[old_pid] == new_pid``; crashes are re-sorted by victim so two
    scenarios in the same orbit relabel to *equal* objects.
    """
    crashes = tuple(
        sorted(
            (
                CrashEvent(
                    pid=perm[event.pid],
                    round=event.round,
                    sent_to=frozenset(perm[q] for q in event.sent_to),
                    applies_transition=event.applies_transition,
                )
                for event in scenario.crashes
            ),
            key=lambda event: event.pid,
        )
    )
    pending = frozenset(
        PendingMessage(perm[message.sender], perm[message.recipient], message.round)
        for message in scenario.pending
    )
    return FailureScenario(n=scenario.n, crashes=crashes, pending=pending)


def _scenario_key(scenario: FailureScenario) -> tuple:
    """A total-order key identifying a scenario up to crash order."""
    return (
        tuple(
            (event.pid, event.round, tuple(sorted(event.sent_to)),
             event.applies_transition)
            for event in sorted(scenario.crashes, key=lambda e: e.pid)
        ),
        tuple(
            sorted(
                (message.sender, message.recipient, message.round)
                for message in scenario.pending
            )
        ),
    )


def canonical_scenarios(
    n: int,
    t: int,
    *,
    max_round: int,
    allow_pending: bool,
    include_transition: bool = True,
) -> list[tuple[FailureScenario, int]]:
    """Orbit representatives of :func:`all_scenarios` under pid relabeling.

    Returns ``(representative, orbit_size)`` pairs: one scenario per
    equivalence class of the full symmetric group acting on process
    ids, with the number of enumerated scenarios it stands for.  The
    orbit sizes sum to the full enumeration's cardinality (pinned
    against :func:`expected_scenario_count` in the tests), so nothing
    is silently dropped.

    Note that :func:`all_scenarios` itself deliberately stays
    exhaustive: the latency computations pair scenarios with *value
    assignments*, and a scenario-only quotient is sound only when the
    consumer relabels values and initial configurations along with the
    pids — which is exactly what the model checker's orbit reduction
    (:mod:`repro.mc.symmetry`) does on joint states.  Quotienting here
    would silently change ``Lat``/``Λ`` for value-asymmetric
    algorithms such as FloodSet's min rule.
    """
    perms = list(itertools.permutations(range(n)))
    orbits: dict[tuple, list] = {}
    for scenario in all_scenarios(
        n,
        t,
        max_round=max_round,
        allow_pending=allow_pending,
        include_transition=include_transition,
    ):
        canonical = min(
            _scenario_key(relabel_scenario(scenario, perm)) for perm in perms
        )
        entry = orbits.get(canonical)
        if entry is None:
            orbits[canonical] = [scenario, 1]
        else:
            entry[1] += 1
    return [(scenario, count) for scenario, count in orbits.values()]


def random_scenario(
    n: int,
    t: int,
    *,
    max_round: int,
    allow_pending: bool,
    rng: random.Random,
    crash_prob: float = 0.7,
    pending_prob: float = 0.5,
) -> FailureScenario:
    """Draw one admissible scenario at random (for large spaces)."""
    victims: list[int] = []
    for pid in rng.sample(range(n), k=min(t, n - 1)):
        if rng.random() < crash_prob:
            victims.append(pid)
    events: list[CrashEvent] = []
    for pid in victims:
        others = [q for q in range(n) if q != pid]
        round_index = rng.randint(1, max_round)
        reached = frozenset(q for q in others if rng.random() < 0.5)
        applies = reached == frozenset(others) and rng.random() < 0.5
        events.append(
            CrashEvent(
                pid=pid,
                round=round_index,
                sent_to=reached,
                applies_transition=applies,
            )
        )
    pending: set[PendingMessage] = set()
    if allow_pending:
        for candidate in _pending_candidates(n, events, max_round):
            if rng.random() < pending_prob:
                pending.add(candidate)
    scenario = FailureScenario(
        n=n, crashes=tuple(events), pending=frozenset(pending)
    )
    if validate_scenario(scenario, t=t, allow_pending=allow_pending):
        # Extremely rare (pending combinations are pre-filtered); retry
        # without pending rather than looping.
        scenario = FailureScenario(n=n, crashes=tuple(events))
    return scenario


def expected_scenario_count(
    n: int,
    t: int,
    *,
    max_round: int,
    include_transition: bool = True,
) -> int:
    """Closed-form size of the RS adversary space (pending excluded).

    Per victim there are ``max_round * (2^(n-1) + [include_transition])``
    crash events (each round: every reached-subset, plus the completed-
    transition variant); scenarios pick ``f <= t`` victims and an event
    for each.  Used as a self-check against :func:`all_scenarios` — a
    drift between the formula and the generator would mean the
    enumeration silently lost part of the adversary space.
    """
    events_per_victim = max_round * (
        2 ** (n - 1) + (1 if include_transition else 0)
    )
    total = 0
    for f in range(t + 1):
        total += math.comb(n, f) * events_per_victim**f
    return total
