"""Differential fuzzing across all four engines (``repro fuzz``).

The repo runs the same algorithms four ways — the RS and RWS round
executor and the two Section-4 step-kernel emulations — and the paper's
central claim is that these agree.  This package makes that claim a
*fuzzable* property:

* :mod:`repro.fuzz.strategies` — seed-stable case generators, plus
  Hypothesis strategies over :class:`FailurePattern` /
  :class:`FailureScenario` / workload configurations (optional
  dependency);
* :mod:`repro.fuzz.oracles` — the per-case differential oracles
  (trace-check, emulation↔rounds twin, byte-exact replay);
* :mod:`repro.fuzz.shrink` — delta-debugging reduction of failing
  cases to minimal counterexamples;
* :mod:`repro.fuzz.campaign` — the campaign driver behind the
  ``repro fuzz`` CLI, including the batch jobs/cache parity oracles
  and replayable counterexample JSON.
"""

from repro.fuzz.campaign import (
    Counterexample,
    FuzzReport,
    generate_cases,
    load_counterexample,
    resolve_engines,
    run_campaign,
)
from repro.fuzz.oracles import (
    OracleFailure,
    case_failures,
    check_oracle,
    replay_oracle,
    run_case,
    twin_oracle,
    twin_request,
)
from repro.fuzz.shrink import ShrinkResult, shrink, shrink_moves
from repro.fuzz.strategies import (
    FUZZ_ENGINES,
    LIVE_FUZZ_ENGINE,
    SAFE_ALGORITHMS,
    VECTOR_FUZZ_ENGINES,
    case_rng,
    generate_case,
    generate_pattern,
    generate_scenario,
    generate_values,
)

__all__ = [
    "Counterexample",
    "FuzzReport",
    "FUZZ_ENGINES",
    "LIVE_FUZZ_ENGINE",
    "OracleFailure",
    "SAFE_ALGORITHMS",
    "ShrinkResult",
    "VECTOR_FUZZ_ENGINES",
    "case_failures",
    "case_rng",
    "check_oracle",
    "generate_case",
    "generate_cases",
    "generate_pattern",
    "generate_scenario",
    "generate_values",
    "load_counterexample",
    "replay_oracle",
    "resolve_engines",
    "run_campaign",
    "run_case",
    "shrink",
    "shrink_moves",
    "twin_oracle",
    "twin_request",
]
