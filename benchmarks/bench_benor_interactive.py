"""Benchmarks for Ben-Or consensus and interactive consistency.

Baselines beyond the paper's own artefacts: the randomized route's
cost (steps per decision under asynchrony) and the vector-consensus
flooding cost relative to plain FloodSet.
"""

import random

from repro.consensus.interactive import (
    InteractiveConsistency,
    check_interactive_consistency_run,
)
from repro.analysis import verify_algorithm
from repro.failures import FailurePattern
from repro.randomized import benor_decisions, run_benor
from repro.rounds import RoundModel


def bench_benor_mixed_inputs(benchmark):
    pattern = FailurePattern.crash_free(3)

    def mixed():
        return run_benor(
            [0, 1, 1], pattern, rng=random.Random(7), coin_seed=7
        )

    run = benchmark(mixed)
    assert len(set(benor_decisions(run).values())) == 1
    benchmark.extra_info["steps"] = len(run.schedule)


def bench_benor_with_crash(once):
    pattern = FailurePattern.with_crashes(3, {0: 25})

    def crashed():
        return run_benor(
            [0, 1, 1], pattern, rng=random.Random(3), coin_seed=3
        )

    run = once(crashed)
    decisions = benor_decisions(run)
    assert decisions[1] == decisions[2]


def bench_interactive_consistency_exhaustive(once):
    report = once(
        verify_algorithm,
        InteractiveConsistency(),
        3,
        1,
        RoundModel.RS,
        checker=check_interactive_consistency_run,
    )
    assert report.ok
