.PHONY: install test test-fast bench bench-report examples experiments report trace-smoke check-smoke clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	PYTHONPATH=src python scripts/bench_report.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

experiments:
	python -m repro experiments --extensions

report:
	python -m repro report --output EXPERIMENTS.md

TRACE_SMOKE_OUT ?= /tmp/repro_trace_smoke.jsonl

trace-smoke:
	PYTHONPATH=src python -m repro trace floodset-rws-violation --jsonl $(TRACE_SMOKE_OUT)
	PYTHONPATH=src python scripts/check_trace.py $(TRACE_SMOKE_OUT)

check-smoke:
	PYTHONPATH=src python -m repro check fopt-fast
	PYTHONPATH=src python -m repro check floodset-rws

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
