"""Tests for the SDD problem: SS solution and SP impossibility."""

from __future__ import annotations

import random

import pytest

from repro.failures import FailurePattern
from repro.sdd import (
    SP_CANDIDATE_FACTORIES,
    check_sdd_run,
    refute_sdd_candidate,
    sdd_decision,
    solve_sdd_ss,
)
from repro.sdd.impossibility import (
    PatientReceiverSP,
    SuspicionReceiverSP,
    TimeoutReceiverSP,
)
from repro.sdd.spec import RECEIVER, SENDER


class TestSSAlgorithm:
    @pytest.mark.parametrize("value", [0, 1])
    @pytest.mark.parametrize("phi,delta", [(1, 1), (2, 3), (3, 1)])
    def test_correct_sender_value_decided(self, value, phi, delta, rng):
        pattern = FailurePattern.crash_free(2)
        run = solve_sdd_ss(value, pattern, phi=phi, delta=delta, rng=rng)
        assert sdd_decision(run) == value
        assert check_sdd_run(run, value).ok

    @pytest.mark.parametrize("value", [0, 1])
    def test_initially_dead_sender_defaults_to_zero(self, value, rng):
        pattern = FailurePattern.with_crashes(2, {SENDER: 0})
        run = solve_sdd_ss(value, pattern, rng=rng)
        assert sdd_decision(run) == 0
        assert check_sdd_run(run, value).ok

    @pytest.mark.parametrize("crash_time", [1, 2, 3, 5])
    def test_sender_crash_after_first_step_still_valid(self, crash_time, rng):
        """Once the sender stepped, its value reaches the receiver — the
        bounded detection SS guarantees and SP cannot."""
        pattern = FailurePattern.with_crashes(2, {SENDER: crash_time})
        run = solve_sdd_ss(1, pattern, phi=2, delta=2, rng=rng)
        verdict = check_sdd_run(run, 1)
        assert verdict.ok, verdict.describe()
        assert sdd_decision(run) == 1

    def test_decision_within_deadline_steps(self, rng):
        pattern = FailurePattern.crash_free(2)
        run = solve_sdd_ss(1, pattern, phi=1, delta=2, rng=rng)
        receiver_steps = [s for s in run.schedule if s.pid == RECEIVER]
        # The receiver decides on its (Φ+1+Δ)-th step = 4th step.
        assert receiver_steps[-1].local_step <= 1 + 1 + 2

    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_ss_schedules(self, seed):
        rng = random.Random(seed)
        crash = {SENDER: rng.randint(0, 6)} if seed % 2 else {}
        pattern = FailurePattern.with_crashes(2, crash)
        value = seed % 2
        run = solve_sdd_ss(value, pattern, phi=2, delta=2, rng=rng)
        assert check_sdd_run(run, value).ok


class TestSpecChecker:
    def test_termination_violation_detected(self, rng):
        # Horizon too short for the receiver to reach its deadline.
        pattern = FailurePattern.crash_free(2)
        run = solve_sdd_ss(1, pattern, phi=1, delta=1, rng=rng, max_steps=2)
        verdict = check_sdd_run(run, 1)
        assert not verdict.ok
        assert any("termination" in v for v in verdict.violations)

    def test_validity_exempts_never_stepped_sender(self, rng):
        pattern = FailurePattern.with_crashes(2, {SENDER: 0})
        run = solve_sdd_ss(1, pattern, rng=rng)
        # Receiver decided 0 although the sender's value was 1 — allowed,
        # because the sender was initially crashed.
        assert check_sdd_run(run, 1).ok


class TestTheorem31:
    @pytest.mark.parametrize(
        "name", sorted(SP_CANDIDATE_FACTORIES), ids=str
    )
    def test_every_candidate_refuted(self, name):
        refutation = refute_sdd_candidate(
            SP_CANDIDATE_FACTORIES[name], name
        )
        assert refutation.refuted, refutation.describe()

    @pytest.mark.parametrize(
        "name", sorted(SP_CANDIDATE_FACTORIES), ids=str
    )
    def test_indistinguishability_forces_equal_decisions(self, name):
        """The heart of the proof: the receiver decides the same value in
        all four runs because its observations are identical."""
        refutation = refute_sdd_candidate(
            SP_CANDIDATE_FACTORIES[name], name
        )
        decisions = set(refutation.decisions.values())
        assert len(decisions) == 1

    def test_violation_is_validity_in_a_primed_run(self):
        refutation = refute_sdd_candidate(
            SP_CANDIDATE_FACTORIES["suspicion"], "suspicion"
        )
        flagged = {
            run_name
            for run_name, problems in refutation.violations.items()
            if problems
        }
        # The decision d satisfies validity in rX but not in r(1-X)'.
        assert flagged <= {"r0'", "r1'"}
        assert flagged

    def test_custom_candidate_with_larger_timeout_still_fails(self):
        refutation = refute_sdd_candidate(
            lambda: TimeoutReceiverSP(deadline=150), "timeout-150"
        )
        assert refutation.refuted

    def test_patient_candidate_grace_periods_fail(self):
        for grace in (1, 20, 80):
            refutation = refute_sdd_candidate(
                lambda g=grace: PatientReceiverSP(grace=g), f"patient-{grace}"
            )
            assert refutation.refuted

    def test_default_one_candidate_decides_default(self):
        refutation = refute_sdd_candidate(
            lambda: SuspicionReceiverSP(default=1), "suspicion-default-1"
        )
        # Symmetric failure: now r0' is the violated run.
        assert refutation.refuted
        assert refutation.violations["r0'"]
