"""The unified execution interface: ``ExecutionRequest → ExecutionResult``.

A request is a complete, immutable, serializable description of one
execution cell — which engine to run, which algorithm, which adversary,
and under which knobs.  Everything a worker process or a cache lookup
needs is in the request; nothing is ambient.  That is what makes sweeps
shippable across a process pool and replayable from disk:

* requests are plain frozen data → picklable for ``multiprocessing``;
* ``to_dict``/``from_dict`` round-trip through JSON → cacheable;
* :meth:`ExecutionRequest.cache_key` hashes the canonical JSON form →
  a stable identity for the on-disk result cache.

A result carries the structured event trace (recorded under the
deterministic logical clock), the raw metrics state, and the run's
decisions — enough for the trace oracle, the merge step, and the
latency aggregations, without re-executing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.failures.pattern import FailurePattern
from repro.inject import active_injection
from repro.obs.events import Event
from repro.rounds.scenario import FailureScenario
from repro.serialize import (
    pattern_from_dict,
    pattern_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)

#: Bump when the result schema or engine semantics change incompatibly;
#: part of every cache key, so stale cache entries miss instead of
#: resurfacing under a new schema.
#: v2: results carry ``extra`` (the emulations' induced round scenario).
CACHE_SCHEMA_VERSION = 2

#: The engines a request may target.  ``"vector"`` runs the same RS/RWS
#: round semantics as ``"rounds"`` on the columnar batch kernel
#: (:mod:`repro.vector`) — same inputs, byte-identical traces, distinct
#: cache keys (the engine name is part of the request).
ENGINES = ("rounds", "rs_on_ss", "rws_on_sp", "live", "vector")


@dataclass(frozen=True)
class ExecutionRequest:
    """One execution cell of a scenario space.

    Attributes:
        name: Human-readable cell label (unique within a space).
        engine: ``"rounds"`` (the RS/RWS round executor),
            ``"vector"`` (the columnar batch kernel running the same
            round semantics), ``"rs_on_ss"`` or ``"rws_on_sp"`` (the
            Section 4 emulations on the step kernels), or ``"live"``
            (the asyncio cluster runtime with heartbeat-built P).
        algorithm: Registry key (see :mod:`repro.runtime.registry`).
        values: Initial value per process; fixes ``n``.
        t: Resilience parameter.
        model: ``"RS"`` or ``"RWS"`` for the rounds engine; ``None``
            for the emulations (implied by the engine).
        scenario: The round-model adversary (rounds engine only).
        pattern: The step-time failure pattern (emulations and live;
            the live engine reads crash times as units of 10 ms wall
            clock).
        max_rounds: Round horizon.
        seed: RNG seed for the randomized step schedulers (emulations
            only; the rounds engine is fully deterministic).
        params: Extra engine keyword arguments (``phi``, ``delta``,
            ``delivery_prob``, ...), stored as a sorted tuple of pairs
            so requests stay hashable.
        expect_disagreement: The documented outcome of this cell is a
            consensus violation (the paper's counterexamples); the
            ``--check`` oracle then *requires* the disagreement.
        check_consensus: Whether the consensus checker's verdict is
            meaningful for this cell (randomized RWS adversaries on
            non-WS algorithms may legitimately disagree, so only the
            model invariants are enforced there).
    """

    name: str
    engine: str
    algorithm: str
    values: tuple[Any, ...]
    t: int = 1
    model: str | None = None
    scenario: FailureScenario | None = None
    pattern: FailurePattern | None = None
    max_rounds: int = 4
    seed: int | None = None
    params: tuple[tuple[str, Any], ...] = ()
    expect_disagreement: bool = False
    check_consensus: bool = True

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.engine in ("rounds", "vector"):
            if self.scenario is None or self.model not in ("RS", "RWS"):
                raise ConfigurationError(
                    f"{self.name}: the {self.engine} engine needs a scenario "
                    "and model='RS'|'RWS'"
                )
        else:
            if self.pattern is None:
                raise ConfigurationError(
                    f"{self.name}: the emulation and live engines need a "
                    "failure pattern"
                )
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(
            self, "params", tuple(sorted(tuple(self.params)))
        )

    @property
    def n(self) -> int:
        return len(self.values)

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "engine": self.engine,
            "algorithm": self.algorithm,
            "values": list(self.values),
            "t": self.t,
            "model": self.model,
            "scenario": (
                scenario_to_dict(self.scenario)
                if self.scenario is not None
                else None
            ),
            "pattern": (
                pattern_to_dict(self.pattern)
                if self.pattern is not None
                else None
            ),
            "max_rounds": self.max_rounds,
            "seed": self.seed,
            "params": [list(pair) for pair in self.params],
            "expect_disagreement": self.expect_disagreement,
            "check_consensus": self.check_consensus,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionRequest":
        return cls(
            name=data["name"],
            engine=data["engine"],
            algorithm=data["algorithm"],
            values=tuple(data["values"]),
            t=data.get("t", 1),
            model=data.get("model"),
            scenario=(
                scenario_from_dict(data["scenario"])
                if data.get("scenario") is not None
                else None
            ),
            pattern=(
                pattern_from_dict(data["pattern"])
                if data.get("pattern") is not None
                else None
            ),
            max_rounds=data.get("max_rounds", 4),
            seed=data.get("seed"),
            params=tuple(
                (key, value) for key, value in data.get("params", ())
            ),
            expect_disagreement=data.get("expect_disagreement", False),
            check_consensus=data.get("check_consensus", True),
        )

    def cache_key(self) -> str:
        """A stable content hash identifying this cell's result.

        The key covers every field that influences execution plus the
        cache schema version — two requests with equal keys produce
        byte-identical results, and a semantic change to any engine
        must bump :data:`CACHE_SCHEMA_VERSION` to invalidate old
        entries wholesale.
        """
        payload = {"v": CACHE_SCHEMA_VERSION, "request": self.to_dict()}
        # A mutated engine (REPRO_INJECT_BUG) computes different results
        # for the same request; keep its entries apart from the real
        # code's so mutation-testing runs never poison the cache.
        injected = active_injection()
        if injected is not None:
            payload["injected_bug"] = injected
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _dumps(value: Any) -> str:
    """One fragment of the canonical form, same dialect as the whole."""
    return json.dumps(value, sort_keys=True, default=repr)


def _scalar_fragment(value: Any) -> str:
    """``_dumps`` with the fixed-output scalars short-circuited — the
    per-cell fields are almost always bools/ints/None, and skipping the
    encoder for them is most of :func:`batch_cache_keys`'s win."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    if type(value) is int:
        return str(value)
    return _dumps(value)


def _values_fragment(values: Sequence[Any]) -> str:
    if all(type(value) is int for value in values):
        # json.dumps's default list separator is ", ".
        return "[" + ", ".join(map(str, values)) + "]"
    return _dumps(list(values))


def batch_cache_keys(requests: Sequence["ExecutionRequest"]) -> list[str]:
    """:meth:`ExecutionRequest.cache_key` for many requests at once.

    Identical output to calling ``cache_key()`` per request, but the
    canonical JSON's *shared* fragments — dominated by the scenario —
    are serialized once per distinct ``(engine, algorithm, t, model,
    scenario, pattern, max_rounds, params)`` shape and only the
    per-cell fields (name, values, seed, consensus flags) are dumped
    and spliced per request.  The splice of each shape's first request
    is verified byte-for-byte against the full computation; any
    mismatch (or an active bug injection, whose marker changes the
    payload layout) falls back to the reference path for that shape.
    A thousand-cell batch over one adversary hashes the adversary once
    instead of a thousand times, which is what keeps the columnar
    engine's per-cell overhead flat.
    """
    keys: list[str] = [""] * len(requests)
    fragments: dict[tuple, tuple[str, ...] | None] = {}
    injected = active_injection()
    for index, request in enumerate(requests):
        if injected is not None:
            keys[index] = request.cache_key()
            continue
        # Identity-keyed on the adversary objects: spaces share one
        # scenario instance across a group's cells, and id-keying
        # avoids re-hashing a large frozen scenario per cell.  Distinct
        # but equal instances merely rebuild the fragments.
        shape = (
            request.engine,
            request.algorithm,
            request.t,
            request.model,
            id(request.scenario),
            id(request.pattern),
            request.max_rounds,
            request.params,
        )
        pieces = fragments.get(shape, _MISSING)
        if pieces is _MISSING:
            # json.dumps(sort_keys=True) fixes the request-dict key
            # order, so the canonical string factors into static
            # fragments around the five per-cell fields.
            pieces = (
                '{"request": {"algorithm": '
                + _dumps(request.algorithm)
                + ', "check_consensus": ',
                ', "engine": '
                + _dumps(request.engine)
                + ', "expect_disagreement": ',
                ', "max_rounds": '
                + _dumps(request.max_rounds)
                + ', "model": '
                + _dumps(request.model)
                + ', "name": ',
                ', "params": '
                + _dumps([list(pair) for pair in request.params])
                + ', "pattern": '
                + _dumps(
                    pattern_to_dict(request.pattern)
                    if request.pattern is not None
                    else None
                )
                + ', "scenario": '
                + _dumps(
                    scenario_to_dict(request.scenario)
                    if request.scenario is not None
                    else None
                )
                + ', "seed": ',
                ', "t": ' + _dumps(request.t) + ', "values": ',
                '}, "v": ' + _dumps(CACHE_SCHEMA_VERSION) + "}",
            )
            if (
                hashlib.sha256(
                    _splice(pieces, request).encode("utf-8")
                ).hexdigest()
                != request.cache_key()
            ):  # pragma: no cover - canonical-format drift guard
                pieces = None
            fragments[shape] = pieces
        if pieces is None:
            keys[index] = request.cache_key()
        else:
            canonical = _splice(pieces, request)
            keys[index] = hashlib.sha256(
                canonical.encode("utf-8")
            ).hexdigest()
    return keys


def _splice(pieces: tuple[str, ...], request: "ExecutionRequest") -> str:
    """Interleave a shape's static fragments with one cell's fields."""
    return "".join(
        (
            pieces[0],
            _scalar_fragment(request.check_consensus),
            pieces[1],
            _scalar_fragment(request.expect_disagreement),
            pieces[2],
            _dumps(request.name),
            pieces[3],
            _scalar_fragment(request.seed),
            pieces[4],
            _values_fragment(request.values),
            pieces[5],
        )
    )


_MISSING = object()


@dataclass
class ExecutionResult:
    """What one executed cell produced.

    Attributes:
        name: The request's cell label.
        request_key: The producing request's :meth:`cache_key`.
        events: The structured trace, recorded under the deterministic
            logical clock (timestamps restart at 1.0 per cell, so the
            trace is independent of which worker ran it).
        metrics: The raw :meth:`~repro.obs.MetricsRegistry.state` of
            the cell's metrics registry.
        decisions: ``pid -> (round, value)`` for deciding processes.
        latency: Rounds until all correct processes decided, ``None``
            for incomplete runs.
        num_rounds: Rounds the engine executed.
        extra: Engine-specific structured facts about the run.  The
            emulation harnesses store the *induced* round-level scenario
            here (``extra["induced_scenario"]``,
            :func:`~repro.serialize.scenario_to_dict` form), which is
            what lets the differential fuzzer build the rounds-engine
            twin of an emulation cell without re-running it.
        cached: True when this result was served from the on-disk
            cache instead of executed (never serialized as True).
    """

    name: str
    request_key: str
    events: list[Event] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    decisions: dict[int, tuple[int, Any]] = field(default_factory=dict)
    latency: int | None = None
    num_rounds: int = 0
    extra: dict[str, Any] = field(default_factory=dict)
    cached: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "request_key": self.request_key,
            "events": [event.to_dict() for event in self.events],
            "metrics": self.metrics,
            "decisions": {
                str(pid): [entry[0], entry[1]]
                for pid, entry in sorted(self.decisions.items())
            },
            "latency": self.latency,
            "num_rounds": self.num_rounds,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionResult":
        return cls(
            name=data["name"],
            request_key=data["request_key"],
            events=[Event.from_dict(entry) for entry in data["events"]],
            metrics=dict(data.get("metrics", {})),
            decisions={
                int(pid): (entry[0], entry[1])
                for pid, entry in data.get("decisions", {}).items()
            },
            latency=data.get("latency"),
            num_rounds=data.get("num_rounds", 0),
            extra=dict(data.get("extra", {})),
        )
