"""The one parallel-execution primitive the repo uses.

Everything that fans work out — sweep cells, the experiment suite —
goes through :func:`parallel_map`, so policy decisions (start method,
chunking, the serial fast path) live in exactly one place.  Results
always come back in input order; parallelism must never be observable
in outputs, only in wall-clock time.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible worker count for this machine."""
    return os.cpu_count() or 1


def _context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits imports); fall back otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    jobs: int = 1,
    on_result: Callable[[R], None] | None = None,
) -> list[R]:
    """``[func(item) for item in items]``, optionally across a pool.

    ``jobs <= 1`` (or fewer than two items) runs serially in-process —
    no pool, no pickling, identical semantics.  ``func`` must be a
    module-level callable (or a ``functools.partial`` of one) and
    ``items`` picklable when ``jobs > 1``.

    ``on_result`` is invoked in the parent, in *input order*, as each
    result becomes available — the seam campaign telemetry hangs off
    (incremental cache writes, progress heartbeats).  With a pool this
    streams via ``imap``, so an interrupted run has already delivered
    every completed prefix result to the callback; parallelism still
    must never be observable in outputs, only in wall-clock time.
    """
    if jobs <= 1 or len(items) < 2:
        results: list[R] = []
        for item in items:
            result = func(item)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results
    workers = min(jobs, len(items))
    # Modest chunking keeps imap's overhead near pool.map for the tiny
    # cells the sweeps run, while still streaming results back early.
    chunksize = max(1, len(items) // (workers * 4))
    with _context().Pool(processes=workers) as pool:
        results = []
        for result in pool.imap(func, items, chunksize=chunksize):
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results


def map_indexed(
    func: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int = 1,
) -> list[R]:
    """:func:`parallel_map` over any iterable (materialised first)."""
    return parallel_map(func, list(items), jobs=jobs)
