"""CLI-level tests for ``repro trace`` / ``repro metrics`` — including
the shelled-out smoke path that ``make trace-smoke`` uses."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.workloads import floodset_rws_violation

REPO_ROOT = Path(__file__).resolve().parent.parent


def _shell(*args: str) -> subprocess.CompletedProcess:
    """Run a command with src/ importable, as make trace-smoke does."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return subprocess.run(
        args, capture_output=True, text=True, env=env, cwd=REPO_ROOT
    )


class TestTraceSmoke:
    """The trace-smoke pipeline: CLI export, then schema validation."""

    def test_trace_export_then_schema_check(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        exported = _shell(
            sys.executable,
            "-m",
            "repro",
            "trace",
            "floodset-rws-violation",
            "--jsonl",
            str(out),
        )
        assert exported.returncode == 0, exported.stderr
        assert "wrote" in exported.stdout

        checked = _shell(
            sys.executable, "scripts/check_trace.py", str(out)
        )
        assert checked.returncode == 0, checked.stderr
        assert "OK" in checked.stdout

    def test_exported_withheld_events_match_scenario(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        result = _shell(
            sys.executable,
            "-m",
            "repro",
            "trace",
            "floodset-rws-violation",
            "--jsonl",
            str(out),
        )
        assert result.returncode == 0, result.stderr
        events = [
            json.loads(line)
            for line in out.read_text().splitlines()
            if line.strip()
        ]
        withheld = {
            (e["peer"], e["pid"], e["round"])
            for e in events
            if e["kind"] == "msg_withheld"
        }
        declared = {
            (p.sender, p.recipient, p.round)
            for p in floodset_rws_violation(3).pending
        }
        assert withheld == declared

    def test_schema_check_rejects_corrupt_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "teleport", "ts": 1.0}\n')
        result = _shell(sys.executable, "scripts/check_trace.py", str(bad))
        assert result.returncode == 1
        assert "unknown event kind" in result.stderr


class TestTraceCommand:
    def test_trace_to_stdout(self, capsys):
        assert main(["trace", "floodset-rws"]) == 0
        out = capsys.readouterr().out
        kinds = [json.loads(line)["kind"] for line in out.splitlines()]
        assert "msg_withheld" in kinds
        assert kinds[0] == "round_start"

    def test_trace_alias_resolves(self, capsys, tmp_path):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "a1-rws-disagreement", "--jsonl", str(out)]) == 0
        assert out.exists()

    def test_trace_unknown_scenario_exits_2(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestMetricsCommand:
    def test_metrics_prints_per_round_counters(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "messages.sent.round.1 = 9" in out
        assert "messages.withheld.round.1 = 2" in out
        assert "decisions.round.2 = 2" in out
        assert "profile.rounds.execute.seconds" in out

    def test_metrics_unknown_scenario_exits_2(self, capsys):
        assert main(["metrics", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestShowErrorPath:
    def test_show_unknown_scenario_is_clean_error(self, capsys):
        """No traceback, nonzero exit, helpful message."""
        assert main(["show", "definitely-not-a-scenario"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "choose from" in err

    def test_show_accepts_alias(self, capsys):
        assert main(["show", "floodset-rws-violation"]) == 0
        assert "round" in capsys.readouterr().out
