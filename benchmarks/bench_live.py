"""Live cluster runtime — decisions/sec and detection latency under load.

Unlike the logical engines, these runs cost wall-clock time by
construction (real delays, real heartbeats), so every case runs exactly
once.  Each benchmark attaches its throughput (``decisions_per_s``) and
the detector's quality figures (``detection_delay_ms``) to
``benchmark.extra_info``; the span breakdown (``live.bench.*``) lands in
``benchmarks/metrics.jsonl`` for the committed report's ``live_timings``
section.
"""

from repro.live import DetectorConfig, LiveCluster, LiveConfig, profile_by_name
from repro.obs.profile import profiled


def _run(config: LiveConfig):
    with profiled(f"live.bench.{config.profile.name}.{config.algorithm}"):
        return LiveCluster(config).run()


def _attach(benchmark, run) -> None:
    stats = run.stats_dict()
    benchmark.extra_info["profile"] = stats["profile"]
    benchmark.extra_info["decisions"] = stats["decisions"]
    benchmark.extra_info["decisions_per_s"] = stats["decisions_per_s"]
    benchmark.extra_info["detection_delay_ms"] = stats["detector_quality"][
        "detection_delay_ms"
    ]


def bench_live_floodsetws_lan_load(once, benchmark):
    """Throughput ceiling: 24 concurrent sessions on the clean profile."""
    config = LiveConfig(
        algorithm="floodset-ws",
        values=(0, 1, 0, 1),
        profile=profile_by_name("lan"),
        t=1,
        max_rounds=2,
        seed=1,
        sessions=24,
        concurrency=8,
    )
    run = once(_run, config)
    assert run.sessions_completed == 24
    _attach(benchmark, run)


def bench_live_floodset_lossy_crash(once, benchmark):
    """Detection latency: lossy links, one mid-run crash, full check load."""
    config = LiveConfig(
        algorithm="floodset",
        values=(3, 1, 2, 0),
        profile=profile_by_name("lossy"),
        t=1,
        crash_at=((1, 0.03),),
        max_rounds=4,
        seed=7,
    )
    run = once(_run, config)
    decided = {value for _, value in run.decisions.values()}
    assert len(decided) == 1, run.decisions
    assert run.detector_summary["suspicions"] >= 1
    assert run.detector_summary["false_suspicions"] == 0
    _attach(benchmark, run)


def bench_live_floodsetws_adversarial_load(once, benchmark):
    """Load under drops and a partition window (the worst profile)."""
    config = LiveConfig(
        algorithm="floodset-ws",
        values=(0, 1, 0, 1),
        profile=profile_by_name("adversarial"),
        t=1,
        crash_at=((2, 0.05),),
        max_rounds=2,
        seed=3,
        sessions=8,
        concurrency=4,
        timeout_s=60.0,
    )
    run = once(_run, config)
    assert run.sessions_completed == 8
    assert run.detector_summary["false_suspicions"] == 0
    _attach(benchmark, run)


def bench_live_chandra_toueg_lossy(once, benchmark):
    """Step-mode Chandra–Toueg on P with a dead first coordinator."""
    config = LiveConfig(
        algorithm="chandra-toueg",
        values=(5, 7, 7),
        profile=profile_by_name("lossy"),
        t=1,
        detector=DetectorConfig(kind="ep"),
        crash_at=((0, 0.0),),
        seed=5,
    )
    run = once(_run, config)
    decided = {value for _, value in run.decisions.values()}
    assert decided == {7}, run.decisions
    _attach(benchmark, run)
