"""The ``repro`` command: run experiments and inspect runs from a shell.

This module is the thin dispatcher; each subcommand lives in its own
module under :mod:`repro.cli` and registers itself via ``register``:

* :mod:`repro.cli.experiments` — ``experiments``, ``summary``,
  ``sdd``, ``commit``, ``latency``.
* :mod:`repro.cli.show` — ``show SCENARIO`` (round tableau / DOT).
* :mod:`repro.cli.trace` — ``trace`` (JSONL export) and ``metrics``.
* :mod:`repro.cli.check` — ``check`` (trace oracle), ``replay``
  (deterministic re-execution), ``diff`` (divergence / Theorem 3.1).
* :mod:`repro.cli.sweep` — ``sweep SPACE`` (parallel, cached, checked
  scenario-space execution through the unified runtime).
* :mod:`repro.cli.serve` — ``serve`` / ``work`` (the sharded campaign
  fabric: one coordinator leasing shards to workers over HTTP, merged
  into the same run directories ``sweep --run-dir`` writes).
* :mod:`repro.cli.fuzz` — ``fuzz`` (differential fuzzing across the
  engines, with counterexample shrinking).
* :mod:`repro.cli.mc` — ``mc`` (exhaustive bounded model checking:
  HOLDS/REFUTED verdicts over closed schedule frontiers, with
  replayable witnesses).
* :mod:`repro.cli.live` — ``live`` (a real asyncio cluster with
  heartbeat-built P and network fault injection).
* :mod:`repro.cli.report` — ``report`` (run-directory dashboard, or
  the legacy EXPERIMENTS.md regeneration when no run is named) and
  ``top`` (tail a running campaign's heartbeats).
* :mod:`repro.cli.causal` — ``causal`` (happens-before graphs,
  critical-path latency attribution, suspicion forensics).
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.cli import causal as _causal
from repro.cli import check as _check
from repro.cli import experiments as _experiments
from repro.cli import fuzz as _fuzz
from repro.cli import live as _live
from repro.cli import mc as _mc
from repro.cli import report as _report
from repro.cli import serve as _serve
from repro.cli import show as _show
from repro.cli import sweep as _sweep
from repro.cli import trace as _trace

# Backward-compatible re-exports: the shared CLI vocabulary moved to
# repro.cli.common, but callers (and tests) import it from here.
from repro.cli.common import (  # noqa: F401
    ALGORITHMS,
    EXPECTED_DISAGREEMENT,
    NON_CONSENSUS_VALUES,
    SCENARIO_ALIASES,
    SCENARIOS,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Synchronous System and Perfect Failure "
            "Detector' (DSN 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for module in (
        _experiments,
        _show,
        _trace,
        _check,
        _sweep,
        _serve,
        _fuzz,
        _mc,
        _live,
        _report,
        _causal,
    ):
        module.register(sub)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
